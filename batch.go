package upskiplist

import (
	"upskiplist/internal/metrics"
	"upskiplist/internal/pmem"
	"upskiplist/internal/skiplist"
	"upskiplist/internal/slab"
	"upskiplist/internal/snapshot"
)

// OpKind selects what one batched Op does.
type OpKind uint8

const (
	// OpInsert adds or updates a key (upsert).
	OpInsert OpKind = iota
	// OpGet reads a key.
	OpGet
	// OpRemove tombstones a key.
	OpRemove
)

// Op is one operation of a group-committed batch (see Worker.ApplyBatch).
type Op struct {
	Kind  OpKind
	Key   uint64
	Value []byte // ignored for OpGet/OpRemove
}

// OpResult is the outcome of one batched Op, in submission order. For
// OpInsert, Value/Found are the previous value and whether the key
// existed; for OpGet, the read value and whether it was found; for
// OpRemove, the removed value and whether the key was present. Value
// slices alias the worker's internal buffer and are valid until the
// worker's next operation.
type OpResult struct {
	Value []byte
	Found bool
	Err   error
}

// ApplyBatch applies ops as a group-committed batch and returns their
// results in submission order. See ApplyBatchInto for semantics; this
// variant allocates the result slice.
func (w *Worker) ApplyBatch(ops []Op) []OpResult {
	return w.ApplyBatchInto(ops, make([]OpResult, len(ops)))
}

// ApplyBatchInto is ApplyBatch writing results into res (which must have
// len(ops) elements), for callers that reuse buffers across batches.
//
// Operations are grouped by owning shard and each shard's run is applied
// under one traversal context in ascending key order. Value chunks for
// the shard's inserts are written first with their line flushes deferred
// into one group, drained by a single flush-and-fence BEFORE any node
// word publishes a chunk (preserving the write-then-publish crash
// ordering); the list's own commit persists are likewise deferred and
// drained by a single trailing flush per shard. A batch of B operations
// on one shard pays two fences rather than 2B. An empty batch is a
// complete no-op (no routing, no flush, no fence).
//
// Ordering contract: duplicate keys within one batch are applied
// deterministically in submission order — last-writer-wins for the final
// state, every operation observing exactly the effects of earlier
// same-key operations in the batch (so results are identical to applying
// the batch sequentially); results for different keys never depend on
// each other. Same-key routing is stable because a key always maps to
// one shard and each shard applies its run under a stable sort.
//
// Durability is group-commit: no operation of the batch is guaranteed
// durable until ApplyBatchInto returns. A crash mid-batch may lose any
// subset of the batch's effects — the same exposure as a crash just
// before a lone operation's commit fence, amortized over the batch.
// Chunks published by effects that were lost are reclaimed by the
// startup sweep.
func (w *Worker) ApplyBatchInto(ops []Op, res []OpResult) []OpResult {
	if len(res) != len(ops) {
		panic("upskiplist: ApplyBatchInto result buffer length mismatch")
	}
	if len(ops) == 0 {
		return res
	}
	w.ops += uint64(len(ops))
	m := w.s.met.Load()
	var start int64
	if m != nil {
		start = metrics.Now()
	}
	ns := len(w.s.shards)
	if w.runs == nil {
		w.runs = make([][]skiplist.BatchOp, ns)
	}
	for si := range w.runs {
		w.runs[si] = w.runs[si][:0]
	}
	for i, op := range ops {
		res[i] = OpResult{}
		if op.Kind == OpInsert && len(op.Value) > MaxValueLen {
			res[i].Err = ErrValueTooLarge
			continue
		}
		si := w.s.shardOf(op.Key)
		kind := skiplist.BatchInsert
		switch op.Kind {
		case OpGet:
			kind = skiplist.BatchGet
		case OpRemove:
			kind = skiplist.BatchRemove
		}
		w.runs[si] = append(w.runs[si], skiplist.BatchOp{
			Kind: kind, Key: op.Key, Tag: i,
		})
	}
	w.vbuf = w.vbuf[:0]
	for si := range w.runs {
		if len(w.runs[si]) == 0 {
			continue
		}
		if m != nil {
			m.shardOps[si].Add(uint64(len(w.runs[si])))
		}
		w.applyShard(si, ops, res)
	}
	if m != nil {
		m.batchLat.Since(start)
		m.batchOps.Add(uint64(len(ops)))
	}
	if f := w.s.feed.Load(); f != nil {
		// Commit to the change feed in submission order: replaying the
		// recorded changes in order reproduces the batch's final state
		// (last-writer-wins duplicates included). Failed ops and removes
		// of absent keys changed nothing and are not recorded. The feed
		// outlives this batch, so it gets its own copy of the bytes.
		var changes []snapshot.Change
		for i, op := range ops {
			if res[i].Err != nil {
				continue
			}
			switch op.Kind {
			case OpInsert:
				changes = append(changes, snapshot.Change{
					Kind: snapshot.ChangePut, Key: op.Key,
					Value: append([]byte(nil), op.Value...),
				})
			case OpRemove:
				if res[i].Found {
					changes = append(changes, snapshot.Change{Kind: snapshot.ChangeDel, Key: op.Key})
				}
			}
		}
		f.Append(changes)
	}
	return res
}

// applyShard runs one shard's slice of the batch: pre-write value
// chunks (deferred flush, one fence), apply the list batch, then decode
// results and retire superseded chunks — all under one era pin so no
// chunk this run observes can be freed before its bytes are copied out.
func (w *Worker) applyShard(si int, ops []Op, res []OpResult) {
	e, ctx := w.s.shards[si], w.ctxs[si]
	run := w.runs[si]
	e.list.Pin(ctx)
	defer e.list.Unpin(ctx)

	// Stage every insert's value bytes into fresh chunks. Chunk data
	// persists are deferred into fb and drained by one grouped fence
	// before ApplyBatch can publish any of the refs.
	//
	// 8-byte updates of keys that already hold a slab chunk take the
	// in-place fast path instead (the batch analogue of putInPlace): the
	// existing chunk's payload word is overwritten directly — no
	// allocation, no node-word CAS, so a pure-update batch costs no page
	// grows and no structural fences. Because the node word never moves,
	// the payload line needs no write-then-publish ordering either: its
	// flush defers into ctx.Group and rides ApplyBatch's single trailing
	// fence. The pre-pass runs in submission order BEFORE the list batch,
	// so it may only consume a key's ops while doing so cannot reorder
	// them against list-phase ops on the same key: a key is eligible when
	// every one of its ops in this run is a read or an 8-byte insert
	// (removes and mixed-size inserts stay on the list path, and make
	// every op on their key ineligible), and only when no snapshot is
	// open (the old bytes are not version-logged). When an eligible
	// insert cannot go in place (key absent, legacy inline word, chained
	// value), that op and the key's remaining ops fall through to the
	// list phase — everything already consumed preceded them in
	// submission order, so sequential equivalence holds.
	var fb pmem.Batch
	inPlace := e.list.OpenSnapshots() == 0
	if inPlace {
		if w.keyElig == nil {
			w.keyElig = make(map[uint64]bool)
		}
		clear(w.keyElig)
		for j := range run {
			ok := run[j].Kind == skiplist.BatchGet ||
				run[j].Kind == skiplist.BatchInsert && len(ops[run[j].Tag].Value) == 8
			if was, seen := w.keyElig[run[j].Key]; seen {
				ok = ok && was
			}
			w.keyElig[run[j].Key] = ok
		}
	}
	k := 0
	for j := range run {
		key := run[j].Key
		switch run[j].Kind {
		case skiplist.BatchGet:
			if inPlace && w.keyElig[key] {
				if word, ok := e.list.Get(ctx, key); ok {
					r := &res[run[j].Tag]
					off := len(w.vbuf)
					w.vbuf = e.decodeValue(word, w.vbuf, ctx.Mem)
					r.Value = w.vbuf[off:len(w.vbuf):len(w.vbuf)]
					r.Found = true
				}
				continue
			}
		case skiplist.BatchInsert:
			val := ops[run[j].Tag].Value
			if inPlace && w.keyElig[key] {
				if old, ok := e.overwriteInPlace(ctx, key, val, &ctx.Group); ok {
					r := &res[run[j].Tag]
					off := len(w.vbuf)
					w.vbuf = append(w.vbuf, old[:]...)
					r.Value = w.vbuf[off:len(w.vbuf):len(w.vbuf)]
					r.Found = true
					continue
				}
				// The key's remaining ops must follow this one: route
				// them all through the list phase.
				w.keyElig[key] = false
			}
			ref, err := e.vals.Put(ctx, val, &fb)
			if err != nil {
				res[run[j].Tag].Err = err
				continue
			}
			run[j].Value = ref.Word()
		}
		run[k] = run[j]
		k++
	}
	run = run[:k]
	fb.Flush(ctx.Mem)

	e.list.ApplyBatch(ctx, run)
	if len(run) == 0 {
		// Everything went in-place: ApplyBatch was a no-op, so drain the
		// deferred payload lines here — the batch's one commit fence.
		ctx.Group.Flush(ctx.Mem)
	}

	for j := range run {
		op := &run[j]
		r := &res[op.Tag]
		r.Found, r.Err = op.Found, op.Err
		if op.Err != nil {
			// The op's own chunk was written but never published.
			if op.Kind == skiplist.BatchInsert && slab.IsRef(op.Value) {
				e.vals.Retire(slab.FromWord(op.Value))
			}
			continue
		}
		if op.Found {
			off := len(w.vbuf)
			w.vbuf = e.decodeValue(op.Old, w.vbuf, ctx.Mem)
			r.Value = w.vbuf[off:len(w.vbuf):len(w.vbuf)]
		}
		// Inserts over an existing key and successful removes superseded
		// the old chunk; it retires now that the node word durably moved
		// on (ApplyBatch's trailing flush covered the publish).
		if op.Kind != skiplist.BatchGet && op.Found && slab.IsRef(op.Old) {
			e.vals.Retire(slab.FromWord(op.Old))
		}
	}
}
