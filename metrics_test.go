package upskiplist

import (
	"strings"
	"testing"

	"upskiplist/internal/metrics"
)

func TestStoreMetricsRecording(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	st.EnableMetrics(reg)

	w := st.NewWorker(0)
	for k := uint64(KeyMin); k < KeyMin+100; k++ {
		if _, _, err := w.PutU64(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(KeyMin); k < KeyMin+100; k++ {
		if _, ok := w.GetU64(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	w.Contains(KeyMin)
	if _, _, err := w.RemoveU64(KeyMin); err != nil {
		t.Fatal(err)
	}
	if err := w.ScanU64(KeyMin, KeyMin+50, func(_, _ uint64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	w.ApplyBatch([]Op{
		{Kind: OpInsert, Key: KeyMin + 200, Value: u64v(1)},
		{Kind: OpGet, Key: KeyMin + 200},
		{Kind: OpRemove, Key: KeyMin + 200},
	})

	m := st.met.Load()
	wantCounts := map[opKind]uint64{
		opKindInsert:   100,
		opKindGet:      100,
		opKindContains: 1,
		opKindRemove:   1,
		opKindScan:     1,
	}
	for k, want := range wantCounts {
		if got := m.opLat[k].Hist().Count(); got != want {
			t.Errorf("opLat[%s].Count() = %d, want %d", opKindNames[k], got, want)
		}
	}
	if got := m.batchLat.Hist().Count(); got != 1 {
		t.Errorf("batchLat count = %d, want 1", got)
	}
	if got := m.batchOps.Load(); got != 3 {
		t.Errorf("batchOps = %d, want 3", got)
	}
	// Interleaved routing over a dense key range must touch both shards,
	// and the shard counters must sum to the routed ops (point ops plus
	// batched ops; scans are not routed through a single shard).
	var routed uint64
	for si, c := range m.shardOps {
		if c.Load() == 0 {
			t.Errorf("shard %d routed no ops", si)
		}
		routed += c.Load()
	}
	if want := uint64(100 + 100 + 1 + 1 + 3); routed != want {
		t.Errorf("routed ops = %d, want %d", routed, want)
	}
	// Every insert fences at least once; the fence-wait histogram must
	// have fired.
	fence := reg.Histogram("upsl_fence_wait_seconds", "", nil)
	if fence.Hist().Count() == 0 {
		t.Error("fence-wait histogram recorded nothing")
	}

	// The exposition must carry the per-op-kind series.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`upsl_op_seconds_count{op="insert"} 100`,
		`upsl_op_seconds_count{op="get"} 100`,
		`upsl_shard_ops_total{shard="0"}`,
		`upsl_shard_ops_total{shard="1"}`,
		"upsl_fence_wait_seconds_count",
		"upsl_batch_commit_seconds_count 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// DisableMetrics freezes the instruments.
	st.DisableMetrics()
	before := m.opLat[opKindGet].Hist().Count()
	w.GetU64(KeyMin + 1)
	if got := m.opLat[opKindGet].Hist().Count(); got != before {
		t.Errorf("recording continued after DisableMetrics: %d -> %d", before, got)
	}
}
