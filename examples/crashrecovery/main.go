// Crash recovery: run a concurrent insert workload, pull the plug at an
// arbitrary persistent-memory access (losing every unflushed cache
// line), reopen the store, and verify the structure repaired itself —
// the paper's headline capability (§4.1.3–§4.1.5).
package main

import (
	"fmt"
	"log"
	"sync"

	"upskiplist"
	"upskiplist/internal/pmem"
)

func main() {
	opts := upskiplist.DefaultOptions()
	opts.KeysPerNode = 8
	store, err := upskiplist.Create(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Preload some durable data.
	w := store.NewWorker(0)
	const preload = 1000
	for k := uint64(1); k <= preload; k++ {
		if _, _, err := w.PutU64(k, k); err != nil {
			log.Fatal(err)
		}
	}

	// Arm the power failure: crash tracking snapshots unflushed lines,
	// and the injector kills every worker at its next pool access once
	// the countdown expires.
	store.EnableCrashTracking()
	inj := pmem.NewCountdownInjector(40000)
	store.SetInjector(inj)

	var wg sync.WaitGroup
	var completed [4]int
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.CrashSignal); !ok {
						panic(r) // real bug, not the injected failure
					}
				}
			}()
			worker := store.NewWorker(id)
			for i := 0; ; i++ {
				k := uint64(preload + id*100000 + i + 1)
				if _, _, err := worker.PutU64(k, k); err != nil {
					return
				}
				completed[id]++
			}
		}(id)
	}
	wg.Wait()

	// The machine is dead: unflushed cache lines are gone. Disarm the
	// injector before recovery code touches the pools again.
	inj.Disarm()
	store.SetInjector(nil)
	lost := store.SimulateCrash()
	store.DisableCrashTracking()
	total := 0
	for _, c := range completed {
		total += c
	}
	fmt.Printf("crash: %d operations had completed, %d cache lines lost\n", total, lost)

	// Recovery = reattach + epoch bump. Repairs are deferred into later
	// traversals (watch the recovery counters).
	store2, err := store.Reopen()
	if err != nil {
		log.Fatal(err)
	}
	w2 := store2.NewWorker(0)

	// All preloaded keys must have survived.
	for k := uint64(1); k <= preload; k++ {
		if v, ok := w2.GetU64(k); !ok || v != k {
			log.Fatalf("preloaded key %d damaged: %d %v", k, v, ok)
		}
	}
	// The structure must be fully consistent.
	if err := w2.CheckInvariants(); err != nil {
		log.Fatalf("invariants violated after recovery: %v", err)
	}
	fmt.Printf("after reopen: epoch=%d, %d live keys, invariants OK\n",
		store2.Epoch(), w2.Count())

	// Keep operating; stale-epoch nodes get repaired on sight.
	for k := uint64(1); k <= preload; k++ {
		w2.GetU64(k)
	}
	rec := store2.List().RecoveryStats()
	fmt.Printf("lazy repairs while reading: %d nodes claimed, %d towers completed, %d splits finished\n",
		rec.Claims, rec.Inserts, rec.Splits)

	// Reclaim anything a dying allocation left behind (normally deferred
	// to the owning thread's next allocation; here we sweep eagerly).
	if n := store2.ReclaimOrphans(); n > 0 {
		fmt.Printf("orphan sweep reclaimed %d blocks\n", n)
	}
}
