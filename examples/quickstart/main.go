// Quickstart: create a persistent skip list store, write and read a few
// pairs, simulate a restart, and show that the data survived — all
// through the public upskiplist API.
package main

import (
	"fmt"
	"log"

	"upskiplist"
)

func main() {
	// A Store bundles the simulated persistent-memory pools, the RIV
	// address space, the epoch clock, the recoverable allocator, and the
	// skip list itself.
	store, err := upskiplist.Create(upskiplist.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Each goroutine gets its own Worker; the thread ID is a stable
	// identity used by the allocator's deferred crash recovery.
	w := store.NewWorker(0)

	// Insert is an upsert: it reports the previous value if the key
	// already existed.
	for key := uint64(1); key <= 10; key++ {
		if _, _, err := w.PutU64(key, key*100); err != nil {
			log.Fatal(err)
		}
	}
	if old, existed, _ := w.PutU64(7, 777); existed {
		fmt.Printf("updated key 7: %d -> 777\n", old)
	}

	if v, ok := w.GetU64(7); ok {
		fmt.Printf("get 7 = %d\n", v)
	}

	// Remove tombstones the value (§4.6 of the paper).
	if old, existed, _ := w.RemoveU64(3); existed {
		fmt.Printf("removed key 3 (was %d)\n", old)
	}

	// Range scan over the bottom level.
	fmt.Print("scan [1,10]:")
	w.ScanU64(1, 10, func(k, v uint64) bool {
		fmt.Printf(" %d=%d", k, v)
		return true
	})
	fmt.Println()

	// Simulate a process restart: reattach to the same pools. This is
	// the paper's constant-time recovery — no structure-sized work.
	store2, err := store.Reopen()
	if err != nil {
		log.Fatal(err)
	}
	w2 := store2.NewWorker(0)
	fmt.Printf("after reopen (epoch %d): %d live keys, get 7 = ",
		store2.Epoch(), w2.Count())
	v, _ := w2.GetU64(7)
	fmt.Println(v)
}
