// Database index: the paper's motivating scenario (§1.1) — a fully
// PMEM-resident index for a record store, so a crash needs no index
// rebuild from secondary storage. This example models a table of orders
// indexed by order ID, mixing point lookups, range scans for reporting,
// updates, and a crash/reopen in the middle of the business day.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"upskiplist"
)

// order is the application record; the index maps order ID -> a compact
// encoded form (real systems would store a record locator).
type order struct {
	id     uint64
	amount uint64 // cents
	status uint64 // 0=open 1=shipped 2=cancelled
}

func encode(o order) uint64  { return o.amount<<8 | o.status }
func amount(v uint64) uint64 { return v >> 8 }
func status(v uint64) uint64 { return v & 0xff }

func main() {
	opts := upskiplist.DefaultOptions()
	opts.KeysPerNode = 32 // multi-key nodes: fewer pointer hops per lookup
	opts.SortedNodes = true
	store, err := upskiplist.Create(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load the day's first orders from several loader threads.
	const orders = 20000
	var wg sync.WaitGroup
	for t := 0; t < 4; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := store.NewWorker(t)
			rng := rand.New(rand.NewSource(int64(t)))
			for i := t; i < orders; i += 4 {
				o := order{
					id:     uint64(i + 1),
					amount: uint64(rng.Intn(90000) + 1000),
					status: 0,
				}
				if _, _, err := w.PutU64(o.id, encode(o)); err != nil {
					log.Fatal(err)
				}
			}
		}(t)
	}
	wg.Wait()
	w := store.NewWorker(0)
	fmt.Printf("loaded %d orders\n", w.Count())

	// Point lookup: order status check.
	if v, ok := w.GetU64(4242); ok {
		fmt.Printf("order 4242: amount=%d.%02d status=%d\n",
			amount(v)/100, amount(v)%100, status(v))
	}

	// Ship a batch of orders (updates).
	for id := uint64(100); id < 200; id++ {
		if v, ok := w.GetU64(id); ok {
			w.PutU64(id, v&^uint64(0xff)|1) // status=shipped
		}
	}

	// Range scan: revenue report over an ID window (e.g. one shard).
	var revenue, shipped, count uint64
	w.ScanU64(100, 299, func(k, v uint64) bool {
		revenue += amount(v)
		if status(v) == 1 {
			shipped++
		}
		count++
		return true
	})
	fmt.Printf("orders 100..299: %d orders, %d shipped, revenue %d.%02d\n",
		count, shipped, revenue/100, revenue%100)

	// Cancel an order (delete from the index).
	w.RemoveU64(150)

	// Mid-day crash: the index needs no rebuild — reattach and continue.
	store2, err := store.Reopen()
	if err != nil {
		log.Fatal(err)
	}
	w2 := store2.NewWorker(0)
	if _, ok := w2.GetU64(150); ok {
		log.Fatal("cancelled order came back")
	}
	if v, ok := w2.GetU64(101); !ok || status(v) != 1 {
		log.Fatal("shipped order lost its status")
	}
	fmt.Printf("after crash+reopen: %d orders still indexed, no rebuild needed\n", w2.Count())

	// Business continues immediately.
	w2.PutU64(orders+1, encode(order{id: orders + 1, amount: 5000}))
	fmt.Println("new order accepted post-recovery")
}
