// NUMA awareness: run the same workload over the two pool layouts the
// paper compares in §5.2.3 — a single pool striped across the sockets
// versus one pool per NUMA node addressed through extended RIV pointers —
// and report throughput and the fraction of remote accesses.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"upskiplist"
	"upskiplist/internal/pmem"
)

const (
	nodes   = 4
	workers = 8
	keys    = 60000
	opsEach = 10000
)

func runLayout(placement upskiplist.Placement) {
	opts := upskiplist.DefaultOptions()
	opts.NUMANodes = nodes
	opts.Placement = placement
	opts.KeysPerNode = 32
	opts.Cost = pmem.DefaultCostModel() // remote accesses cost extra
	store, err := upskiplist.Create(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Preload.
	w := store.NewWorker(0)
	for k := uint64(1); k <= keys; k++ {
		if _, _, err := w.PutU64(k, k); err != nil {
			log.Fatal(err)
		}
	}

	// Mixed read/update workload from workers round-robined over nodes.
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := store.NewWorker(id)
			for i := 0; i < opsEach; i++ {
				k := uint64((id*2654435761+i*40503)%keys) + 1
				if i%2 == 0 {
					worker.GetU64(k)
				} else {
					worker.PutU64(k, uint64(i))
				}
			}
		}(id)
	}
	wg.Wait()
	dur := time.Since(start)

	var loads, remote uint64
	for _, p := range store.Pools() {
		s := p.Stats().Snapshot()
		loads += s.Loads + s.Stores + s.CASes
		remote += s.RemoteOps
	}
	fmt.Printf("%-10s  pools=%d  throughput=%.2f Mops/s  remote-accesses=%.1f%%\n",
		placement, len(store.Pools()),
		float64(workers*opsEach)/dur.Seconds()/1e6,
		float64(remote)/float64(loads)*100)
}

func main() {
	fmt.Printf("workload: %d workers on %d simulated NUMA nodes, %d ops each\n\n",
		workers, nodes, opsEach)
	runLayout(upskiplist.Striped)
	runLayout(upskiplist.PerNode)
	fmt.Println("\nThe paper finds the two layouts within ~5.6% of each other:")
	fmt.Println("NUMA awareness via extended RIV pool IDs is essentially free,")
	fmt.Println("while enabling node-local allocation — new nodes land in the")
	fmt.Println("inserting thread's local pool, visible above as the lower")
	fmt.Println("remote-access share of the per-node layout.")
}
