// Benchmarks regenerating the paper's tables and figures as Go testing.B
// targets (one family per artifact; see DESIGN.md's experiment index and
// cmd/upsl-bench for the full sweeps with formatted output).
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=Fig51 -cpu 1,2,4
//
// Absolute ns/op values are simulator-scale; compare across structures
// and configurations, not against the paper's hardware numbers.
package upskiplist_test

import (
	"sync/atomic"
	"testing"

	"upskiplist"
	"upskiplist/internal/bztree"
	"upskiplist/internal/harness"
	"upskiplist/internal/pmem"
	"upskiplist/internal/ycsb"
)

const (
	benchPreload = 20000
	benchKeysPN  = 32
	benchHeight  = 20
)

func benchUPSLOptions(keysPerNode int, placement upskiplist.Placement, cost *pmem.CostModel) upskiplist.Options {
	o := upskiplist.DefaultOptions()
	o.MaxHeight = benchHeight
	o.KeysPerNode = keysPerNode
	o.Placement = placement
	if placement != upskiplist.SinglePool {
		o.NUMANodes = 4
	}
	o.PoolWords = 1 << 24
	o.ChunkWords = 1 << 15
	o.MaxChunks = 1 << 9
	o.Cost = cost
	return o
}

func newBenchUPSL(b *testing.B, keysPerNode int, placement upskiplist.Placement, cost *pmem.CostModel) *harness.UPSL {
	b.Helper()
	u, err := harness.NewUPSL(benchUPSLOptions(keysPerNode, placement, cost), "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	return u
}

func newBenchBzTree(b *testing.B, descriptors int, cost *pmem.CostModel) *harness.BzTreeIndex {
	b.Helper()
	bz, err := harness.NewBzTree(bztree.Config{
		LeafCapacity: 64,
		Descriptors:  descriptors,
		NumThreads:   64,
		RegionWords:  1 << 25,
	}, cost)
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(bz, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	return bz
}

func newBenchLazy(b *testing.B, cost *pmem.CostModel) *harness.LazyIndex {
	b.Helper()
	lz, err := harness.NewLazy(1<<25, benchHeight, 256, cost)
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(lz, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	return lz
}

// runWorkload drives the index with a YCSB mix under RunParallel so that
// -cpu sweeps reproduce the papers' thread scaling.
func runWorkload(b *testing.B, idx harness.Index, w ycsb.Workload) {
	run := ycsb.NewRun(w, benchPreload)
	var nextID atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextID.Add(1) - 1)
		h := idx.NewHandle(id)
		st := run.NewStream(int64(id) + 1)
		for pb.Next() {
			op := st.Next()
			if op.Type == ycsb.Read {
				h.Read(op.Key)
			} else {
				if err := h.Insert(op.Key, op.Value&harness.ValueMask|1); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// --- Figure 5.1: throughput, update-heavy (A) and read-mostly (B). ---

func BenchmarkFig51_WorkloadA_UPSkipList(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkFig51_WorkloadA_BzTree(b *testing.B) {
	runWorkload(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkFig51_WorkloadA_PMDKSkipList(b *testing.B) {
	runWorkload(b, newBenchLazy(b, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkFig51_WorkloadB_UPSkipList(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadB)
}

func BenchmarkFig51_WorkloadB_BzTree(b *testing.B) {
	runWorkload(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), ycsb.WorkloadB)
}

func BenchmarkFig51_WorkloadB_PMDKSkipList(b *testing.B) {
	runWorkload(b, newBenchLazy(b, pmem.DefaultCostModel()), ycsb.WorkloadB)
}

// --- Figure 5.2: throughput, read-only (C) and read-latest (D). ---

func BenchmarkFig52_WorkloadC_UPSkipList(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkFig52_WorkloadC_BzTree(b *testing.B) {
	runWorkload(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkFig52_WorkloadC_PMDKSkipList(b *testing.B) {
	runWorkload(b, newBenchLazy(b, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkFig52_WorkloadD_UPSkipList(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadD)
}

func BenchmarkFig52_WorkloadD_BzTree(b *testing.B) {
	runWorkload(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), ycsb.WorkloadD)
}

func BenchmarkFig52_WorkloadD_PMDKSkipList(b *testing.B) {
	runWorkload(b, newBenchLazy(b, pmem.DefaultCostModel()), ycsb.WorkloadD)
}

// --- Figure 5.3: RIV pointers (K=1) vs libpmemobj fat pointers,
// read-only. ---

func BenchmarkFig53_RIVPointers(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, 1, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkFig53_FatPointers(b *testing.B) {
	runWorkload(b, newBenchLazy(b, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

// --- Figure 5.4 / Table 5.2: striped vs NUMA-aware multi-pool. ---

func BenchmarkFig54_Striped_WorkloadA(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.Striped, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkFig54_PerNode_WorkloadA(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.PerNode, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkFig54_Striped_WorkloadC(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.Striped, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkFig54_PerNode_WorkloadC(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.PerNode, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

// --- Figures 5.5/5.6 share machinery with throughput; latency
// percentiles are produced by `upsl-bench -exp fig5.5` / `-exp fig5.6`.
// Here we measure the per-op mean, separated by operation kind. ---

func benchOpKind(b *testing.B, idx harness.Index, read bool) {
	h := idx.NewHandle(0)
	run := ycsb.NewRun(ycsb.WorkloadA, benchPreload)
	st := run.NewStream(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := st.Next()
		if read {
			h.Read(op.Key)
		} else if err := h.Insert(op.Key, op.Value&harness.ValueMask|1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig55_Read_UPSkipList(b *testing.B) {
	benchOpKind(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), true)
}

func BenchmarkFig55_Update_UPSkipList(b *testing.B) {
	benchOpKind(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), false)
}

func BenchmarkFig55_Read_BzTree(b *testing.B) {
	benchOpKind(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), true)
}

func BenchmarkFig55_Update_BzTree(b *testing.B) {
	benchOpKind(b, newBenchBzTree(b, 50000, pmem.DefaultCostModel()), false)
}

func BenchmarkFig56_Read_PMDKSkipList(b *testing.B) {
	benchOpKind(b, newBenchLazy(b, pmem.DefaultCostModel()), true)
}

func BenchmarkFig56_Update_PMDKSkipList(b *testing.B) {
	benchOpKind(b, newBenchLazy(b, pmem.DefaultCostModel()), false)
}

// --- Hot path: single-worker steady-state allocs/op and ns/op, with the
// volatile hint cache on (default) and off. Op streams are pre-generated
// outside the timer; inserts hit preloaded keys (pure updates), so the
// measured path is traversal + value publish with zero heap traffic. ---

func benchHotPath(b *testing.B, mode string, disableHints bool) {
	o := benchUPSLOptions(benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel())
	o.DisableHintCache = disableHints
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	w := u.Store().NewWorker(0)
	ops := ycsb.NewRun(ycsb.WorkloadC, benchPreload).NewStream(1).Fill(nil, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&(len(ops)-1)]
		read := mode == "get" || (mode == "mixed" && i&1 == 0)
		if read {
			w.GetU64(op.Key)
		} else if _, _, err := w.PutU64(op.Key, op.Value&harness.ValueMask|1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPath_Get(b *testing.B)            { benchHotPath(b, "get", false) }
func BenchmarkHotPath_Get_NoHints(b *testing.B)    { benchHotPath(b, "get", true) }
func BenchmarkHotPath_Insert(b *testing.B)         { benchHotPath(b, "insert", false) }
func BenchmarkHotPath_Insert_NoHints(b *testing.B) { benchHotPath(b, "insert", true) }
func BenchmarkHotPath_Mixed(b *testing.B)          { benchHotPath(b, "mixed", false) }
func BenchmarkHotPath_Mixed_NoHints(b *testing.B)  { benchHotPath(b, "mixed", true) }

// Hint cache vs the SortedNodes-only baseline on the skewed (Zipfian)
// read-only workload — the acceptance comparison recorded in
// EXPERIMENTS.md.
func benchHintCacheYCSBC(b *testing.B, disableHints bool) {
	o := benchUPSLOptions(benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel())
	o.SortedNodes = true
	o.DisableHintCache = disableHints
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	runWorkload(b, u, ycsb.WorkloadC)
}

func BenchmarkHintCache_YCSBC_On(b *testing.B)  { benchHintCacheYCSBC(b, false) }
func BenchmarkHintCache_YCSBC_Off(b *testing.B) { benchHintCacheYCSBC(b, true) }

// --- Table 5.4: recovery time. Each iteration performs one full
// crash-recovery reattach. ---

func BenchmarkTable54_Recovery_UPSkipList(b *testing.B) {
	u := newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBzRecovery(b *testing.B, descriptors int) {
	bz := newBenchBzTree(b, descriptors, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bz.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// The paper's 500K/100K descriptor pools, scaled by 10x to match the
// scaled preload; the ratio between the two is the reproduced result.
func BenchmarkTable54_Recovery_BzTree50KDesc(b *testing.B) { benchBzRecovery(b, 50000) }
func BenchmarkTable54_Recovery_BzTree10KDesc(b *testing.B) { benchBzRecovery(b, 10000) }

func BenchmarkTable54_Recovery_PMDKSkipList(b *testing.B) {
	lz := newBenchLazy(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lz.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: expected O(log n) lookup scaling. ---

func benchScalingGet(b *testing.B, n uint64) {
	o := benchUPSLOptions(benchKeysPN, upskiplist.SinglePool, nil)
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, n, 4); err != nil {
		b.Fatal(err)
	}
	h := u.NewHandle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(uint64(i)%n + 1)
	}
}

func BenchmarkScaling_Get1K(b *testing.B)   { benchScalingGet(b, 1_000) }
func BenchmarkScaling_Get10K(b *testing.B)  { benchScalingGet(b, 10_000) }
func BenchmarkScaling_Get100K(b *testing.B) { benchScalingGet(b, 100_000) }

// --- Ablations (design choices called out in DESIGN.md). ---

// Multi-key nodes vs classic one-key nodes.
func BenchmarkAblationNodeKeys_K1(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, 1, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkAblationNodeKeys_K16(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, 16, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

func BenchmarkAblationNodeKeys_K64(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, 64, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

// Sorted-on-split nodes (the paper's future-work optimization) vs
// unsorted scans.
func BenchmarkAblationSortedNodes_Off(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, 64, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadC)
}

func BenchmarkAblationSortedNodes_On(b *testing.B) {
	o := benchUPSLOptions(64, upskiplist.SinglePool, pmem.DefaultCostModel())
	o.SortedNodes = true
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	runWorkload(b, u, ycsb.WorkloadC)
}

// Sensitivity to the simulated PMEM access cost.
func BenchmarkAblationPersistCost_Off(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, nil), ycsb.WorkloadA)
}

func BenchmarkAblationPersistCost_On(b *testing.B) {
	runWorkload(b, newBenchUPSL(b, benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel()), ycsb.WorkloadA)
}

// Allocator arena count (contention reduction, §4.3.3).
func benchArenas(b *testing.B, arenas int) {
	o := benchUPSLOptions(benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel())
	o.NumArenas = arenas
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	runWorkload(b, u, ycsb.WorkloadD) // insert-heavy enough to allocate
}

func BenchmarkAblationArenas_1(b *testing.B)  { benchArenas(b, 1) }
func BenchmarkAblationArenas_4(b *testing.B)  { benchArenas(b, 4) }
func BenchmarkAblationArenas_16(b *testing.B) { benchArenas(b, 16) }

// Post-crash read throughput under the paper's deferred-repair budget k
// (§4.4.1): k=1 avoids the post-recovery collapse that eager
// repair-on-sight (unlimited k) causes, at the cost of a longer tail of
// stale nodes.
func benchPostCrashReads(b *testing.B, budget int) {
	o := benchUPSLOptions(benchKeysPN, upskiplist.SinglePool, pmem.DefaultCostModel())
	o.RecoveryBudget = budget
	u, err := harness.NewUPSL(o, "")
	if err != nil {
		b.Fatal(err)
	}
	if err := harness.Preload(u, benchPreload, 4); err != nil {
		b.Fatal(err)
	}
	// Crash boundary: every node becomes stale.
	if _, err := u.Recover(); err != nil {
		b.Fatal(err)
	}
	h := u.NewHandle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(uint64(i)%benchPreload + 1)
	}
}

func BenchmarkAblationRecoveryBudget_K1(b *testing.B) { benchPostCrashReads(b, 1) }
func BenchmarkAblationRecoveryBudget_K8(b *testing.B) { benchPostCrashReads(b, 8) }
func BenchmarkAblationRecoveryBudget_Unlimited(b *testing.B) {
	benchPostCrashReads(b, -1)
}
