package upskiplist

import "encoding/binary"

// u64v is the 8-byte little-endian encoding of v — the PutU64
// representation — for tests that drive the byte API with word-shaped
// workloads.
func u64v(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
