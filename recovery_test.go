package upskiplist

import (
	"errors"
	"fmt"
	"testing"

	"upskiplist/internal/pmem"
)

// recoveryTestOptions is a small sharded geometry: enough shards for the
// recovery fan-out to matter and enough chunks per pool for the
// page-parallel sweeps to have several pages per worker.
func recoveryTestOptions(shards int) Options {
	o := testOptions()
	o.Shards = shards
	o.ChunkWords = 1 << 10
	o.MaxChunks = 512
	return o
}

// fillRecoveryStore writes a deterministic mixed workload: inline 8-byte
// values, slab-resident 100-byte values, and a band of deletes so the
// sweeps have retired blocks and dead slab chunks to find.
func fillRecoveryStore(t *testing.T, st *Store, n uint64) {
	t.Helper()
	w := st.NewWorker(0)
	big := make([]byte, 100)
	for i := uint64(0); i < n; i++ {
		k := KeyMin + i
		if i%3 == 0 {
			for j := range big {
				big[j] = byte(k + uint64(j))
			}
			if _, _, err := w.Put(k, big); err != nil {
				t.Fatal(err)
			}
		} else if _, _, err := w.PutU64(k, k*31); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i += 7 {
		if _, _, err := w.Remove(KeyMin + i); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRecoveryReadback verifies the full logical state fillRecoveryStore
// left behind.
func checkRecoveryReadback(t *testing.T, st *Store, n uint64) {
	t.Helper()
	w := st.NewWorker(0)
	for i := uint64(0); i < n; i++ {
		k := KeyMin + i
		v, ok := w.Get(k)
		if i%7 == 0 {
			if ok {
				t.Fatalf("deleted key %#x present", k)
			}
			continue
		}
		if !ok {
			t.Fatalf("key %#x missing", k)
		}
		if i%3 == 0 {
			if len(v) != 100 || v[0] != byte(k) || v[99] != byte(k+99) {
				t.Fatalf("key %#x bad slab value", k)
			}
		} else if len(v) != 8 {
			t.Fatalf("key %#x bad inline value", k)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryParallelMatchesSerial reopens two identically built stores
// with a serial and an 8-way recovery and demands the same block census,
// the same sweep work counters, and the same logical contents. This is
// the free-list-merge correctness check; CI also runs it under -race to
// catch unsynchronized accumulator sharing.
func TestRecoveryParallelMatchesSerial(t *testing.T) {
	const n = 2000
	build := func(par int) *Store {
		o := recoveryTestOptions(4)
		o.RecoveryParallelism = par
		st, err := Create(o)
		if err != nil {
			t.Fatal(err)
		}
		fillRecoveryStore(t, st, n)
		st.EnableCrashTracking()
		st.SimulateCrash()
		re, err := st.Reopen()
		if err != nil {
			t.Fatal(err)
		}
		return re
	}
	serial, parallel := build(1), build(8)
	cs, cp := serial.BlockCensus(), parallel.BlockCensus()
	if cs != cp {
		t.Fatalf("census diverged: serial %+v parallel %+v", cs, cp)
	}
	rs, rp := serial.RecoveryStats(), parallel.RecoveryStats()
	if rs.PagesSwept != rp.PagesSwept || rs.ChunksRelinked != rp.ChunksRelinked {
		t.Fatalf("sweep counters diverged: serial %+v parallel %+v", rs, rp)
	}
	if rp.Parallelism != 8 || rs.Parallelism != 1 {
		t.Fatalf("parallelism not recorded: %d / %d", rs.Parallelism, rp.Parallelism)
	}
	checkRecoveryReadback(t, serial, n)
	checkRecoveryReadback(t, parallel, n)
}

// TestRecoveryCrashDuringReopen kills recovery mid-sweep with a
// countdown injector, checks the interruption surfaces as
// ErrRecoveryInterrupted, then re-runs recovery and demands the exact
// state a never-interrupted recovery of a twin store produces.
func TestRecoveryCrashDuringReopen(t *testing.T) {
	const n = 2000
	build := func() *Store {
		o := recoveryTestOptions(4)
		o.RecoveryParallelism = 4
		st, err := Create(o)
		if err != nil {
			t.Fatal(err)
		}
		fillRecoveryStore(t, st, n)
		return st
	}
	crashed, control := build(), build()

	// Arm a crash a few thousand pool accesses into recovery — well past
	// attach, inside the sweep phase for this geometry.
	ci := pmem.NewCountdownInjector(5000)
	for _, p := range crashed.Pools() {
		p.SetInjector(ci)
	}
	if _, err := crashed.Reopen(); !errors.Is(err, ErrRecoveryInterrupted) {
		t.Fatalf("interrupted reopen: err = %v", err)
	}
	if !ci.Tripped() {
		t.Fatal("injector never fired")
	}
	for _, p := range crashed.Pools() {
		p.SetInjector(nil)
	}
	re, err := crashed.Reopen()
	if err != nil {
		t.Fatalf("re-recovery: %v", err)
	}
	want, errc := control.Reopen()
	if errc != nil {
		t.Fatal(errc)
	}
	if re.BlockCensus() != want.BlockCensus() {
		t.Fatalf("census after interrupted recovery %+v != clean recovery %+v",
			re.BlockCensus(), want.BlockCensus())
	}
	checkRecoveryReadback(t, re, n)
}

// TestRecoveryCrashDuringLoad interrupts both dump loaders — the
// physical pool-image path and the sorted-pairs bulk build — and checks
// the error type plus a clean retry from the same on-disk images.
func TestRecoveryCrashDuringLoad(t *testing.T) {
	const n = 1500
	st, err := Create(recoveryTestOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	fillRecoveryStore(t, st, n)

	physDir, pairsDir := t.TempDir(), t.TempDir()
	if err := st.Save(physDir); err != nil {
		t.Fatal(err)
	}
	st.EnableSnapshots()
	if err := st.SaveOnline(pairsDir); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		dir  string
	}{{"phys", physDir}, {"bulk", pairsDir}} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadWithConfig(tc.dir, LoadConfig{
				RecoveryParallelism: 4,
				Injector:            pmem.NewCountdownInjector(5000),
			})
			if !errors.Is(err, ErrRecoveryInterrupted) {
				t.Fatalf("interrupted load: err = %v", err)
			}
			re, err := LoadWithConfig(tc.dir, LoadConfig{RecoveryParallelism: 4})
			if err != nil {
				t.Fatalf("clean retry: %v", err)
			}
			checkRecoveryReadback(t, re, n)
		})
	}
}

// TestBulkLoadMatchesReplay loads the same sorted v4 dump through the
// bottom-up bulk builder (serial and parallel) and through the forced
// per-key replay path, across dense and sparse tower geometries, and
// demands identical logical contents from every combination.
func TestBulkLoadMatchesReplay(t *testing.T) {
	const n = 1500
	for _, branch := range []int{0, 8} {
		t.Run(fmt.Sprintf("branch=%d", branch), func(t *testing.T) {
			o := recoveryTestOptions(4)
			o.TowerBranch = branch
			st, err := Create(o)
			if err != nil {
				t.Fatal(err)
			}
			fillRecoveryStore(t, st, n)
			dir := t.TempDir()
			st.EnableSnapshots()
			if err := st.SaveOnline(dir); err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []LoadConfig{
				{RecoveryParallelism: 1},
				{RecoveryParallelism: 8},
				{RecoveryParallelism: 1, ForceReplay: true},
			} {
				ld, err := LoadWithConfig(dir, cfg)
				if err != nil {
					t.Fatalf("load %+v: %v", cfg, err)
				}
				rec := ld.RecoveryStats()
				if cfg.ForceReplay {
					if rec.KeysReplayed == 0 || rec.KeysBulkLoaded != 0 {
						t.Fatalf("forced replay used bulk path: %+v", rec)
					}
				} else if rec.KeysBulkLoaded == 0 || rec.NodesBulkBuilt == 0 {
					t.Fatalf("sorted dump skipped bulk path: %+v", rec)
				}
				checkRecoveryReadback(t, ld, n)

				// Scan equivalence: every live pair, in order.
				w := ld.NewWorker(0)
				next := uint64(0)
				w.Scan(KeyMin, KeyMin+n-1, func(k uint64, v []byte) bool {
					for next < n && next%7 == 0 {
						next++ // deleted band
					}
					if k != KeyMin+next {
						t.Fatalf("scan out of sequence: got %#x want %#x", k, KeyMin+next)
					}
					next++
					return true
				})
			}
		})
	}
}
