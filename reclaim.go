package upskiplist

import (
	"time"

	"upskiplist/internal/alloc"
	"upskiplist/internal/exec"
	"upskiplist/internal/skiplist"
	"upskiplist/internal/slab"
)

// Online reclamation at the store level: one skiplist.Reclaimer per
// shard, plus the coordination with every maintenance entry point that
// assumes a quiesced structure (Save, Compact, crash simulation,
// Reopen). The reclaimers themselves are volatile machinery — nothing
// about them is persisted, which is why OnlineReclaim is not written to
// the meta sidecar: a store Load-ed from disk starts without reclaim
// until EnableOnlineReclaim is called (the server does this from its
// -online-reclaim flag).

// EnableOnlineReclaim attaches an epoch-based background reclaimer to
// every shard. It must be called before concurrent operations begin
// (Create/Reopen call it when Options.OnlineReclaim is set; call it
// right after Load). Idempotent.
//
// Once enabled, fully-tombstoned nodes are retired concurrently with
// the workload — unlinked under the same persistent intent log the
// quiesced Compact uses, parked on a volatile limbo list, and returned
// to the allocator's free lists after a grace period proves no worker
// can still reach them. Compact remains available as a quiesced
// fallback and collects anything the reclaimers had in flight.
func (s *Store) EnableOnlineReclaim() {
	for si, e := range s.shards {
		if e.list.Reclaimer() != nil {
			continue
		}
		node := 0
		if s.opts.Shards > 1 && s.opts.Placement == PerNode {
			node = s.topo.ShardNode(si)
		}
		rec := e.list.StartReclaim(skiplist.ReclaimConfig{
			Interval:  s.opts.ReclaimInterval,
			ScanNodes: s.opts.ReclaimScanNodes,
			Slots:     s.opts.domainSlots(), // worker IDs + reserved snapshot-reader IDs
			ThreadID:  0,                    // frees never touch the per-thread alloc log
			Node:      node,
		})
		if m := s.met.Load(); m != nil && m.graceWait != nil {
			h := m.graceWait
			rec.SetGraceObserver(func(d time.Duration) { h.Observe(d.Nanoseconds()) })
		}
	}
}

// DisableOnlineReclaim stops every shard's reclaimer and waits for the
// goroutines to exit. Blocks not yet past their grace period stay
// retired (unreachable) in persistent memory; Compact or a future
// reclaimer collects them. Idempotent.
func (s *Store) DisableOnlineReclaim() {
	for _, e := range s.shards {
		if r := e.list.Reclaimer(); r != nil {
			r.Stop()
		}
	}
}

// PauseReclaim blocks new reclaim cycles on every shard and waits for
// in-flight ones to finish; while paused the reclaimers mutate nothing.
// Nestable — each PauseReclaim needs a matching ResumeReclaim. No-op
// when reclamation is off.
func (s *Store) PauseReclaim() {
	for _, e := range s.shards {
		if r := e.list.Reclaimer(); r != nil {
			r.Pause()
		}
	}
}

// ResumeReclaim undoes one PauseReclaim.
func (s *Store) ResumeReclaim() {
	for _, e := range s.shards {
		if r := e.list.Reclaimer(); r != nil {
			r.Resume()
		}
	}
}

// ReclaimStats aggregates every shard's reclamation counters. Zero when
// reclamation was never enabled.
func (s *Store) ReclaimStats() skiplist.ReclaimStats {
	var out skiplist.ReclaimStats
	for _, e := range s.shards {
		if r := e.list.Reclaimer(); r != nil {
			st := r.Stats()
			out.Retired += st.Retired
			out.Freed += st.Freed
			out.Rediscovered += st.Rediscovered
			out.LimboDepth += st.LimboDepth
			out.SnapBlocked += st.SnapBlocked
		}
	}
	return out
}

// BlockCensus tallies provisioned blocks by kind across every shard —
// the allocated-footprint view the churn experiment plots against the
// live key count. Approximate under concurrency (racy kind reads).
func (s *Store) BlockCensus() alloc.BlockCensus {
	var out alloc.BlockCensus
	for _, e := range s.shards {
		c := e.alloc.Census()
		out.Free += c.Free
		out.Node += c.Node
		out.Retired += c.Retired
		out.Version += c.Version
		out.Slab += c.Slab
		out.Total += c.Total
	}
	return out
}

// SlabStats aggregates the value-arena counters across every shard:
// chunk alloc/free/retire traffic, limbo depth, page growth, and what
// the last startup sweep reclaimed. Approximate under concurrency, like
// BlockCensus.
func (s *Store) SlabStats() slab.Stats {
	var out slab.Stats
	for _, e := range s.shards {
		if e.vals == nil {
			continue
		}
		st := e.vals.Stats()
		out.ChunksAlloced += st.ChunksAlloced
		out.ChunksFreed += st.ChunksFreed
		out.ChunksRetired += st.ChunksRetired
		out.LimboChunks += st.LimboChunks
		out.Pages += st.Pages
		out.SweepRelinked += st.SweepRelinked
		out.SweepPages += st.SweepPages
	}
	return out
}

// drainReclaimQuiesced frees every limbo block immediately, skipping
// grace periods, and likewise drains every shard's slab-arena limbo so
// a saved image carries no retired-but-unfreed value chunks. Caller
// must have paused the reclaimers AND quiesced all workers. Returns the
// number of blocks freed (node blocks only; chunk frees are interior to
// their slab pages).
func (s *Store) drainReclaimQuiesced() int {
	n := 0
	for _, e := range s.shards {
		if r := e.list.Reclaimer(); r != nil {
			n += r.DrainQuiesced(exec.NewCtx(0, 0))
		}
		if e.vals != nil {
			e.vals.DrainQuiesced(nil)
		}
	}
	return n
}
