module upskiplist

go 1.22
