// Package upskiplist is a Go reproduction of UPSkipList — the scalable,
// recoverable, persistent-memory-resident skip list of "A Scalable
// Recoverable Skip List for Persistent Memory" (SPAA 2021).
//
// A Store bundles one or more simulated persistent-memory pools, the
// extended Region-ID-in-Value (RIV) address space, the failure-free
// epoch clock, the recoverable block allocator, and the skip list
// itself. All durable state lives in the pools; the Store handle is
// volatile and can be re-created over the same pools at any time, which
// is exactly what post-crash recovery amounts to (constant time in the
// structure size).
//
// Quick start:
//
//	st, _ := upskiplist.Create(upskiplist.DefaultOptions())
//	w := st.NewWorker(0)
//	w.Insert(42, 1000)
//	v, ok := w.Get(42)
//
// Crash recovery:
//
//	st.EnableCrashTracking()
//	... workload, then power failure ...
//	st.SimulateCrash()          // unflushed cache lines are lost
//	st2, _ := st.Reopen()       // epoch advances; repairs are deferred
//
// Keys must lie in [upskiplist.KeyMin, upskiplist.KeyMax]; values must
// be below upskiplist.Tombstone.
package upskiplist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"upskiplist/internal/alloc"
	"upskiplist/internal/epoch"
	"upskiplist/internal/exec"
	"upskiplist/internal/numa"
	"upskiplist/internal/pmem"
	"upskiplist/internal/riv"
	"upskiplist/internal/skiplist"
)

// Re-exported key/value sentinels.
const (
	KeyMin    = skiplist.KeyMin
	KeyMax    = skiplist.KeyMax
	Tombstone = skiplist.Tombstone
)

// Placement selects the pool layout (see the paper's §5.2.3 comparison).
type Placement = numa.Placement

// Placement values.
const (
	SinglePool = numa.SinglePool
	Striped    = numa.Striped
	PerNode    = numa.PerNode
)

// Options configures a Store.
type Options struct {
	// MaxHeight and KeysPerNode mirror the paper's parameters (32 levels,
	// 256 keys per node in the evaluation; smaller defaults here).
	MaxHeight   int
	KeysPerNode int
	// SortedNodes enables sorted-on-split nodes with binary-search
	// lookups (the paper's proposed optimization).
	SortedNodes bool
	// RecoveryBudget bounds deferrable post-crash repairs per traversal
	// (the paper's k, §4.4.1); 0 = default 1, negative = unlimited
	// eager repair.
	RecoveryBudget int
	// DisableHintCache turns off the volatile per-worker predecessor-hint
	// cache (on by default) that seeds traversals near recently visited
	// keys. The cache lives in DRAM on each worker, is discarded by
	// Reopen/crash, and can only ever change performance, never results;
	// the knob exists for ablation and debugging. Not persisted by Save.
	DisableHintCache bool

	// NUMANodes is the simulated socket count; Placement selects
	// single-pool, striped, or one-pool-per-node layouts.
	NUMANodes int
	Placement Placement

	// PoolWords is the size of each pool in 64-bit words.
	PoolWords uint64
	// ChunkWords, MaxChunks, NumArenas, NumThreads size the allocator
	// (coarse chunks, free-list arenas, per-thread log slots).
	ChunkWords uint64
	MaxChunks  uint64
	NumArenas  int
	NumThreads int
	// Preallocate carves every chunk into free blocks at Create (the
	// paper's allocation mode 1, §4.3.2) instead of provisioning chunks
	// on demand as the structure grows (mode 2, the default).
	Preallocate bool

	// Cost enables the synthetic PMEM access-cost model (benchmarks).
	Cost *pmem.CostModel
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		MaxHeight:   16,
		KeysPerNode: 16,
		NUMANodes:   1,
		Placement:   SinglePool,
		PoolWords:   1 << 22,
		ChunkWords:  1 << 14,
		MaxChunks:   1024,
		NumArenas:   4,
		NumThreads:  128,
	}
}

func (o *Options) normalize() error {
	if o.MaxHeight == 0 {
		o.MaxHeight = 16
	}
	if o.KeysPerNode == 0 {
		o.KeysPerNode = 16
	}
	if o.NUMANodes <= 0 {
		o.NUMANodes = 1
	}
	if o.Placement == PerNode && o.NUMANodes < 2 {
		return errors.New("upskiplist: PerNode placement needs >= 2 NUMA nodes")
	}
	if o.PoolWords == 0 {
		o.PoolWords = 1 << 22
	}
	if o.ChunkWords == 0 {
		o.ChunkWords = 1 << 14
	}
	if o.MaxChunks == 0 {
		o.MaxChunks = 1024
	}
	if o.NumArenas == 0 {
		o.NumArenas = 4
	}
	if o.NumThreads == 0 {
		o.NumThreads = 128
	}
	return nil
}

func (o Options) allocConfig() alloc.Config {
	return alloc.Config{
		ChunkWords:  o.ChunkWords,
		MaxChunks:   o.MaxChunks,
		BlockWords:  skiplist.BlockWordsFor(o.skipConfig()),
		NumArenas:   o.NumArenas,
		NumLogs:     o.NumThreads,
		RootWords:   64,
		Preallocate: o.Preallocate,
	}
}

func (o Options) skipConfig() skiplist.Config {
	return skiplist.Config{
		MaxHeight:        o.MaxHeight,
		KeysPerNode:      o.KeysPerNode,
		SortedNodes:      o.SortedNodes,
		RecoveryBudget:   o.RecoveryBudget,
		DisableHintCache: o.DisableHintCache,
	}
}

// Store is a handle onto a persistent skip list and its pools.
type Store struct {
	opts  Options
	topo  numa.Topology
	pools []*pmem.Pool
	space *riv.Space
	clock *epoch.Clock
	alloc *alloc.Allocator
	list  *skiplist.SkipList
}

// Create builds a fresh store.
func Create(opts Options) (*Store, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	var pools []*pmem.Pool
	switch opts.Placement {
	case PerNode:
		for n := 0; n < opts.NUMANodes; n++ {
			p, err := pmem.NewPool(pmem.Config{
				ID: uint16(n), Words: opts.PoolWords, HomeNode: n, Cost: opts.Cost,
			})
			if err != nil {
				return nil, err
			}
			pools = append(pools, p)
		}
	case Striped:
		p, err := pmem.NewPool(pmem.Config{
			ID: 0, Words: opts.PoolWords, HomeNode: -1,
			StripeNodes: opts.NUMANodes, Cost: opts.Cost,
		})
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	default:
		p, err := pmem.NewPool(pmem.Config{ID: 0, Words: opts.PoolWords, HomeNode: -1, Cost: opts.Cost})
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	}
	acfg := opts.allocConfig()
	var pas []*alloc.PoolAllocator
	for _, p := range pools {
		pa, err := alloc.Format(p, acfg)
		if err != nil {
			return nil, fmt.Errorf("formatting pool %d: %w", p.ID(), err)
		}
		pas = append(pas, pa)
	}
	st, err := assemble(opts, pools, pas, false)
	if err != nil {
		return nil, err
	}
	list, err := skiplist.Create(st.alloc, opts.skipConfig())
	if err != nil {
		return nil, err
	}
	st.list = list
	return st, nil
}

// assemble wires space/clock/allocator over formatted pools.
func assemble(opts Options, pools []*pmem.Pool, pas []*alloc.PoolAllocator, afterRestart bool) (*Store, error) {
	space := riv.NewSpace()
	for _, p := range pools {
		space.AddPool(p)
	}
	clock := epoch.Attach(pools[0], alloc.EpochOff)
	if afterRestart {
		// A restart is a crash boundary: all prior failure-free work
		// belongs to a dead epoch (§4.1.3). This is the entire
		// structure-independent part of recovery.
		clock.Advance()
	} else {
		clock.InitIfZero()
	}
	a := alloc.New(space, clock)
	for i, pa := range pas {
		node := -1
		if opts.Placement == PerNode {
			node = i
		}
		a.AttachPool(pa, node)
	}
	return &Store{
		opts: opts, topo: numa.Topology{Nodes: opts.NUMANodes},
		pools: pools, space: space, clock: clock, alloc: a,
	}, nil
}

// Reopen simulates a process restart (or post-crash recovery) over the
// same pools: a brand-new handle is assembled, the failure-free epoch is
// advanced, and the old handle must no longer be used. Per the paper,
// this is all the recovery there is — repairs happen lazily during
// subsequent operations.
func (s *Store) Reopen() (*Store, error) {
	var pas []*alloc.PoolAllocator
	for _, p := range s.pools {
		pa, err := alloc.Attach(p)
		if err != nil {
			return nil, err
		}
		pas = append(pas, pa)
	}
	st, err := assemble(s.opts, s.pools, pas, true)
	if err != nil {
		return nil, err
	}
	list, err := skiplist.Open(st.alloc)
	if err != nil {
		return nil, err
	}
	list.SetRecoveryBudget(s.opts.RecoveryBudget)
	list.SetHintCache(!s.opts.DisableHintCache)
	st.list = list
	return st, nil
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// Pools exposes the underlying pools (stats, crash control).
func (s *Store) Pools() []*pmem.Pool { return s.pools }

// Epoch returns the current failure-free epoch.
func (s *Store) Epoch() uint64 { return s.clock.Current() }

// List exposes the internal skip list (tests, harness).
func (s *Store) List() *skiplist.SkipList { return s.list }

// Allocator exposes the internal allocator (tests, harness).
func (s *Store) Allocator() *alloc.Allocator { return s.alloc }

// EnableCrashTracking switches every pool into crash-tracking mode. Must
// be called quiesced.
func (s *Store) EnableCrashTracking() {
	for _, p := range s.pools {
		p.EnableTracking()
	}
}

// DisableCrashTracking leaves crash-tracking mode (all pending writes
// count as persisted).
func (s *Store) DisableCrashTracking() {
	for _, p := range s.pools {
		p.DisableTracking()
	}
}

// SimulateCrash discards every unflushed cache line in every pool,
// modelling a power failure. The store must be quiesced: all workers
// abandoned or stopped. Returns the number of lines reverted.
func (s *Store) SimulateCrash() int {
	n := 0
	for _, p := range s.pools {
		n += p.Crash()
	}
	return n
}

// SimulateCrashPartial is SimulateCrash with cache-eviction modelling:
// each unflushed line independently survives (as if evicted to the
// persistence domain just before the failure) with probability
// evictProb. Returns (reverted, survived) line counts.
func (s *Store) SimulateCrashPartial(evictProb float64, seed uint64) (int, int) {
	rev, sur := 0, 0
	for _, p := range s.pools {
		r, v := p.CrashPartial(evictProb, seed^uint64(p.ID()))
		rev += r
		sur += v
	}
	return rev, sur
}

// SetInjector installs a crash injector on every pool (nil to remove).
func (s *Store) SetInjector(inj pmem.Injector) {
	for _, p := range s.pools {
		p.SetInjector(inj)
	}
}

// ReclaimOrphans runs the optional quiesced sweep for chunks orphaned by
// a crash during chunk provisioning (see alloc.ReclaimOrphanChunks).
func (s *Store) ReclaimOrphans() int {
	return s.alloc.ReclaimOrphanChunks(exec.NewCtx(0, 0))
}

// Compact reclaims every node whose keys are all tombstoned, returning
// their blocks to the allocator — the maintenance pass the paper names
// as the next step beyond tombstoning removals (§4.6, §7). The store
// must be quiesced (no concurrent workers); an interrupted compaction is
// completed automatically at the next Reopen.
func (s *Store) Compact() (int, error) {
	return s.list.Compact(exec.NewCtx(0, 0))
}

// Worker is a per-thread handle. Workers are not safe for concurrent use
// by multiple goroutines; create one per goroutine, with distinct IDs.
// Thread IDs must stay below Options.NumThreads and should be reused
// across a crash by the "same" logical thread (the paper's deferred
// allocation recovery keys off thread identity).
type Worker struct {
	s   *Store
	ctx *exec.Ctx
}

// NewWorker creates a worker pinned (round-robin) to a NUMA node.
func (s *Store) NewWorker(threadID int) *Worker {
	return &Worker{s: s, ctx: exec.NewCtx(threadID, s.topo.NodeOf(threadID))}
}

// Ctx exposes the execution context (harness use).
func (w *Worker) Ctx() *exec.Ctx { return w.ctx }

// Insert adds or updates a key, returning the previous value and whether
// the key was present.
func (w *Worker) Insert(key, value uint64) (old uint64, existed bool, err error) {
	return w.s.list.Insert(w.ctx, key, value)
}

// Get returns the value stored under key.
func (w *Worker) Get(key uint64) (uint64, bool) {
	return w.s.list.Get(w.ctx, key)
}

// Contains reports whether key is present.
func (w *Worker) Contains(key uint64) bool {
	return w.s.list.Contains(w.ctx, key)
}

// Remove deletes key, returning the removed value and whether it was
// present.
func (w *Worker) Remove(key uint64) (uint64, bool, error) {
	return w.s.list.Remove(w.ctx, key)
}

// Scan visits all live pairs with keys in [lo, hi] in ascending order
// until fn returns false.
func (w *Worker) Scan(lo, hi uint64, fn func(key, value uint64) bool) error {
	return w.s.list.Scan(w.ctx, lo, hi, fn)
}

// Count returns the number of live keys (quiesced walk).
func (w *Worker) Count() int { return w.s.list.Count(w.ctx) }

// Iterator returns a forward cursor over live pairs in ascending key
// order. Like the worker itself, it must not be shared between
// goroutines.
func (w *Worker) Iterator() *skiplist.Iterator { return w.s.list.NewIterator(w.ctx) }

// CheckInvariants validates structural invariants (quiesced).
func (w *Worker) CheckInvariants() error { return w.s.list.CheckInvariants(w.ctx) }

// Save writes every pool's durable image into dir (one file per pool).
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range s.pools {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("pool%d.upsl", p.ID())))
		if err != nil {
			return err
		}
		if _, err := p.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return saveMeta(dir, s.opts)
}

// Load re-creates a store from images written by Save; this is a restart
// across processes, so the epoch advances.
func Load(dir string) (*Store, error) {
	opts, err := loadMeta(dir)
	if err != nil {
		return nil, err
	}
	nPools := 1
	if opts.Placement == PerNode {
		nPools = opts.NUMANodes
	}
	var pools []*pmem.Pool
	for id := 0; id < nPools; id++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("pool%d.upsl", id)))
		if err != nil {
			return nil, err
		}
		home, stripe := -1, 0
		if opts.Placement == PerNode {
			home = id
		} else if opts.Placement == Striped {
			stripe = opts.NUMANodes
		}
		p, err := pmem.ReadPool(f, home, stripe, opts.Cost)
		f.Close()
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	}
	var pas []*alloc.PoolAllocator
	for _, p := range pools {
		pa, err := alloc.Attach(p)
		if err != nil {
			return nil, err
		}
		pas = append(pas, pa)
	}
	st, err := assemble(opts, pools, pas, true)
	if err != nil {
		return nil, err
	}
	list, err := skiplist.Open(st.alloc)
	if err != nil {
		return nil, err
	}
	st.list = list
	return st, nil
}

// saveMeta/loadMeta persist Options in a tiny sidecar file.
func saveMeta(dir string, o Options) error {
	f, err := os.Create(filepath.Join(dir, "meta.upsl"))
	if err != nil {
		return err
	}
	defer f.Close()
	sorted := 0
	if o.SortedNodes {
		sorted = 1
	}
	_, err = fmt.Fprintf(f, "v1 %d %d %d %d %d %d %d %d %d %d\n",
		o.MaxHeight, o.KeysPerNode, sorted, o.NUMANodes, int(o.Placement),
		o.PoolWords, o.ChunkWords, o.MaxChunks, o.NumArenas, o.NumThreads)
	return err
}

func loadMeta(dir string) (Options, error) {
	f, err := os.Open(filepath.Join(dir, "meta.upsl"))
	if err != nil {
		return Options{}, err
	}
	defer f.Close()
	var o Options
	var sorted, placement int
	var ver string
	_, err = fmt.Fscan(f, &ver, &o.MaxHeight, &o.KeysPerNode, &sorted, &o.NUMANodes,
		&placement, &o.PoolWords, &o.ChunkWords, &o.MaxChunks, &o.NumArenas, &o.NumThreads)
	if err != nil && err != io.EOF {
		return Options{}, err
	}
	if ver != "v1" {
		return Options{}, fmt.Errorf("upskiplist: unknown meta version %q", ver)
	}
	o.SortedNodes = sorted == 1
	o.Placement = Placement(placement)
	return o, nil
}
