// Package upskiplist is a Go reproduction of UPSkipList — the scalable,
// recoverable, persistent-memory-resident skip list of "A Scalable
// Recoverable Skip List for Persistent Memory" (SPAA 2021).
//
// A Store bundles one or more simulated persistent-memory pools, the
// extended Region-ID-in-Value (RIV) address space, the failure-free
// epoch clock, the recoverable block allocator, and the skip list
// itself. All durable state lives in the pools; the Store handle is
// volatile and can be re-created over the same pools at any time, which
// is exactly what post-crash recovery amounts to (constant time in the
// structure size).
//
// With Options.Shards > 1 the store splits the keyspace across that many
// independent skip lists ("shards"), each with its own pool, allocator
// and epoch clock. Shard pools are placed NUMA-locally under the PerNode
// placement (shard i's pool lives whole on node i mod NUMANodes), point
// operations route by key to the owning shard, and range scans merge the
// per-shard bottom levels back into one ascending key stream. Sharding
// is a volatile routing layer over unchanged per-shard engines: each
// shard recovers exactly like a single-list store.
//
// Values are variable-size byte strings stored out-of-place in a
// slab-class arena carved from the same pools (internal/slab); the node
// value word holds a packed reference that is published with a single
// CAS after the bytes are durable, so recovery always sees the complete
// old or complete new value. The thin PutU64/GetU64 helpers store a
// uint64 as its 8 little-endian bytes for callers porting from the old
// word-valued API.
//
// Quick start:
//
//	st, _ := upskiplist.Create(upskiplist.DefaultOptions())
//	w := st.NewWorker(0)
//	w.Put(42, []byte("hello"))
//	v, ok := w.Get(42) // []byte, valid until w's next operation
//
// Crash recovery:
//
//	st.EnableCrashTracking()
//	... workload, then power failure ...
//	st.SimulateCrash()          // unflushed cache lines are lost
//	st2, _ := st.Reopen()       // epoch advances; repairs are deferred
//
// Group-committed batches (one trailing fence per shard per batch
// instead of one fence per operation):
//
//	res := w.ApplyBatch([]upskiplist.Op{
//		{Kind: upskiplist.OpInsert, Key: 7, Value: 70},
//		{Kind: upskiplist.OpGet, Key: 7},
//	})
//
// Keys must lie in [upskiplist.KeyMin, upskiplist.KeyMax]; values must
// be below upskiplist.Tombstone.
package upskiplist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"upskiplist/internal/alloc"
	"upskiplist/internal/epoch"
	"upskiplist/internal/exec"
	"upskiplist/internal/metrics"
	"upskiplist/internal/numa"
	"upskiplist/internal/pmem"
	"upskiplist/internal/riv"
	"upskiplist/internal/skiplist"
	"upskiplist/internal/slab"
	"upskiplist/internal/snapshot"
)

// Re-exported key/value sentinels.
const (
	KeyMin    = skiplist.KeyMin
	KeyMax    = skiplist.KeyMax
	Tombstone = skiplist.Tombstone
)

// MaxValueLen is the largest value Put accepts (1 MiB). The slab chain
// encoding goes further, but a put this large already spans hundreds of
// chunks; anything bigger belongs in a blob store, not an index.
const MaxValueLen = 1 << 20

// ErrValueTooLarge reports a Put whose value exceeds MaxValueLen (or
// the server's configured bound). Wrap-tested with errors.Is.
var ErrValueTooLarge = errors.New("upskiplist: value exceeds the maximum value length")

// ErrBadGeometry reports Options whose node geometry cannot be packed
// into the on-PMEM node layout: the meta word gives the sorted-prefix
// length 16 bits and the height 8, so KeysPerNode is capped at
// skiplist.MaxKeysPerNode and MaxHeight at skiplist.MaxHeight, and
// TowerBranch must be 0 (default) or within [2, 64]. Wrap-tested with
// errors.Is.
var ErrBadGeometry = errors.New("upskiplist: invalid node geometry")

// Placement selects the pool layout (see the paper's §5.2.3 comparison).
type Placement = numa.Placement

// Placement values.
const (
	SinglePool = numa.SinglePool
	Striped    = numa.Striped
	PerNode    = numa.PerNode
)

// Options configures a Store.
type Options struct {
	// MaxHeight and KeysPerNode mirror the paper's parameters (32 levels,
	// 256 keys per node in the evaluation; smaller defaults here).
	MaxHeight   int
	KeysPerNode int
	// SortedNodes enables sorted-on-split nodes with binary-search
	// lookups (the paper's proposed optimization).
	SortedNodes bool
	// RecoveryBudget bounds deferrable post-crash repairs per traversal
	// (the paper's k, §4.4.1); 0 = default 1, negative = unlimited
	// eager repair.
	RecoveryBudget int
	// DisableHintCache turns off the volatile per-worker predecessor-hint
	// cache (on by default) that seeds traversals near recently visited
	// keys. The cache lives in DRAM on each worker, is discarded by
	// Reopen/crash, and can only ever change performance, never results;
	// the knob exists for ablation and debugging. Not persisted by Save.
	DisableHintCache bool

	// TowerBranch biases tower heights toward the ground: each level
	// promotes with probability 1/TowerBranch instead of the classic 1/2,
	// giving the sparse B-Skiplist-shaped index that keeps the upper
	// levels cache-resident over fat multi-key nodes. 0 picks the tuned
	// default (4); values must otherwise be in [2, 64]. Volatile tuning
	// like the hint cache: not persisted by Save, applied again by
	// Reopen/Load from the options they are given.
	TowerBranch int
	// DisableBlockSearch switches in-node searches back to per-key loads
	// instead of one bulk key-block load searched in DRAM. Ablation knob;
	// results never change.
	DisableBlockSearch bool
	// DisableForesight turns off traversal prefetching (descent
	// next-candidate, scan/iterator successor, and batch next-op hint
	// prefetches). Ablation knob; results never change.
	DisableForesight bool

	// RecoveryParallelism bounds the worker goroutines Reopen and Load
	// fan recovery out across: shards recover concurrently, and any
	// leftover budget splits each shard's allocator kind scans and slab
	// sweep page scans into parallel partitions. 0 means GOMAXPROCS; 1
	// recovers serially. Volatile tuning like TowerBranch: never
	// persisted, never affects the recovered state — only time to ready.
	RecoveryParallelism int

	// Shards splits the keyspace across this many independent skip lists
	// (0 or 1 = today's single-list store). Routing is by key modulo the
	// shard count, so dense keyspaces spread evenly; each shard has its
	// own pool (sized PoolWords), allocator and epoch clock, and under
	// PerNode placement shard i's pool is placed whole on NUMA node
	// i mod NUMANodes. Sharding is volatile configuration the same way
	// pool geometry is: a store must be reopened with the shard count it
	// was created with (Save/Load records it).
	Shards int

	// NUMANodes is the simulated socket count; Placement selects
	// single-pool, striped, or one-pool-per-node layouts.
	NUMANodes int
	Placement Placement

	// PoolWords is the size of each pool in 64-bit words.
	PoolWords uint64
	// ChunkWords, MaxChunks, NumArenas, NumThreads size the allocator
	// (coarse chunks, free-list arenas, per-thread log slots).
	ChunkWords uint64
	MaxChunks  uint64
	NumArenas  int
	NumThreads int
	// Preallocate carves every chunk into free blocks at Create (the
	// paper's allocation mode 1, §4.3.2) instead of provisioning chunks
	// on demand as the structure grows (mode 2, the default).
	Preallocate bool

	// OnlineReclaim starts a background epoch-based reclaimer per shard
	// (see EnableOnlineReclaim): fully-tombstoned nodes are retired and
	// their blocks recycled concurrently with the workload, instead of
	// only by the quiesced Compact. Volatile configuration like the hint
	// cache: not persisted by Save — a Load-ed store needs an explicit
	// EnableOnlineReclaim call.
	OnlineReclaim bool
	// ReclaimInterval is the reclaimer's cycle period (0 = 200µs);
	// ReclaimScanNodes bounds how many bottom-level nodes each cycle
	// examines (0 = 64). Together they rate-limit the sweeper.
	ReclaimInterval  time.Duration
	ReclaimScanNodes int

	// Snapshots switches the MVCC snapshot subsystem on (see
	// EnableSnapshots): Store.Snapshot frozen views, the change feed,
	// and the stall-free SaveOnline. Volatile configuration like
	// OnlineReclaim: not persisted by Save — a Load-ed store needs an
	// explicit EnableSnapshots call.
	Snapshots bool

	// Cost enables the synthetic PMEM access-cost model (benchmarks).
	Cost *pmem.CostModel
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		MaxHeight:   16,
		KeysPerNode: 16,
		NUMANodes:   1,
		Placement:   SinglePool,
		PoolWords:   1 << 22,
		ChunkWords:  1 << 14,
		MaxChunks:   1024,
		NumArenas:   4,
		NumThreads:  128,
	}
}

func (o *Options) normalize() error {
	if o.MaxHeight == 0 {
		o.MaxHeight = 16
	}
	if o.KeysPerNode == 0 {
		o.KeysPerNode = 16
	}
	if o.MaxHeight < 1 || o.MaxHeight > skiplist.MaxHeight {
		return fmt.Errorf("%w: MaxHeight %d outside [1, %d]", ErrBadGeometry, o.MaxHeight, skiplist.MaxHeight)
	}
	if o.KeysPerNode < 1 || o.KeysPerNode > skiplist.MaxKeysPerNode {
		return fmt.Errorf("%w: KeysPerNode %d outside [1, %d] (meta word keeps the sorted prefix in 16 bits)", ErrBadGeometry, o.KeysPerNode, skiplist.MaxKeysPerNode)
	}
	if o.TowerBranch != 0 && (o.TowerBranch < 2 || o.TowerBranch > 64) {
		return fmt.Errorf("%w: TowerBranch %d must be 0 (default) or within [2, 64]", ErrBadGeometry, o.TowerBranch)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.NUMANodes <= 0 {
		o.NUMANodes = 1
	}
	if o.Placement == PerNode && o.NUMANodes < 2 {
		return errors.New("upskiplist: PerNode placement needs >= 2 NUMA nodes")
	}
	if o.PoolWords == 0 {
		o.PoolWords = 1 << 22
	}
	if o.ChunkWords == 0 {
		o.ChunkWords = 1 << 14
	}
	if o.MaxChunks == 0 {
		o.MaxChunks = 1024
	}
	if o.NumArenas == 0 {
		o.NumArenas = 4
	}
	if o.NumThreads == 0 {
		o.NumThreads = 128
	}
	return nil
}

func (o Options) allocConfig() alloc.Config {
	return alloc.Config{
		ChunkWords:  o.ChunkWords,
		MaxChunks:   o.MaxChunks,
		BlockWords:  skiplist.BlockWordsFor(o.skipConfig()),
		NumArenas:   o.NumArenas,
		NumLogs:     o.NumThreads,
		RootWords:   64,
		Preallocate: o.Preallocate,
	}
}

func (o Options) skipConfig() skiplist.Config {
	return skiplist.Config{
		MaxHeight:          o.MaxHeight,
		KeysPerNode:        o.KeysPerNode,
		SortedNodes:        o.SortedNodes,
		RecoveryBudget:     o.RecoveryBudget,
		DisableHintCache:   o.DisableHintCache,
		TowerBranch:        o.TowerBranch,
		DisableBlockSearch: o.DisableBlockSearch,
		DisableForesight:   o.DisableForesight,
	}
}

// engine is one complete single-list store: pools, RIV address space,
// epoch clock, allocator and skip list. An unsharded Store holds exactly
// one; a sharded Store holds Options.Shards of them, each owning a
// disjoint slice of the keyspace. Engines share nothing — separate
// address spaces, separate clocks, separate allocation logs — which is
// what lets each one recover independently and exactly like the
// single-list store of earlier revisions.
type engine struct {
	pools []*pmem.Pool
	space *riv.Space
	clock *epoch.Clock
	alloc *alloc.Allocator
	list  *skiplist.SkipList
	// vals is the shard's slab-class value arena: every non-tombstone
	// value word in the list is (in stores written by this revision) a
	// packed slab.Ref naming the chunk holding the value bytes.
	vals *slab.Arena
}

// decodeValue materializes one node value word: slab references resolve
// to their stored bytes; any other word is a legacy inline uint64 (v1/v2
// pool images) and decodes as its 8 little-endian bytes, which is
// exactly what PutU64 would have produced for it.
func (e *engine) decodeValue(w uint64, dst []byte, acc *pmem.Acc) []byte {
	if slab.IsRef(w) {
		return e.vals.Get(slab.FromWord(w), dst, acc)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w)
	return append(dst, b[:]...)
}

// attachVals opens the shard's slab arena and wires it to the list:
// limbo batches take their grace-period eras from the list's domain, and
// the list's iterators decode value words through the arena. With sweep
// set (reopen/load over pre-existing pools) the startup crash-leak scan
// runs: chunks whose publishing node word never landed are relinked, and
// slab pages orphaned mid-grow go back to the block allocator. scanPar
// is the sweep's intra-shard page-scan parallelism (<= 1 serial).
func (e *engine) attachVals(sweep bool, scanPar int) error {
	ctx := exec.NewCtx(0, 0)
	ar, err := slab.Attach(e.alloc, ctx)
	if err != nil {
		return err
	}
	e.vals = ar
	ar.SetDomain(e.list.Domain)
	e.list.SetValueDecoder(e.decodeValue)
	if sweep {
		ar.SetSweepParallelism(scanPar)
		ar.Sweep(ctx, func(emit func(uint64)) { e.list.ForEachValueWord(ctx, emit) })
	}
	return nil
}

// put is the engine body of Worker.Put: write the value bytes into a
// fresh slab chunk, persist them, and only then publish the chunk via
// the node's value-word CAS. A crash between the two steps leaks the
// chunk (the startup sweep reclaims it); a reader never observes a torn
// value because the node word flips atomically from old ref to new ref.
// The previous value's bytes are appended to dst; its chunk retires
// through the epoch limbo so concurrent readers and open snapshots keep
// a stable view.
func (e *engine) put(ctx *exec.Ctx, key uint64, val, dst []byte) ([]byte, bool, error) {
	if len(val) > MaxValueLen {
		return dst, false, ErrValueTooLarge
	}
	e.list.Pin(ctx)
	defer e.list.Unpin(ctx)
	if len(val) == 8 {
		if old, existed, done := e.putInPlace(ctx, key, val, dst); done {
			return old, existed, nil
		}
	}
	ref, err := e.vals.Put(ctx, val, nil)
	if err != nil {
		return dst, false, err
	}
	oldw, existed, err := e.list.Insert(ctx, key, ref.Word())
	if err != nil {
		// The chunk was written but never published; hand it straight
		// back rather than leaving it for the crash sweep.
		e.vals.Retire(ref)
		return dst, false, err
	}
	if existed {
		dst = e.decodeValue(oldw, dst, ctx.Mem)
		if slab.IsRef(oldw) {
			e.vals.Retire(slab.FromWord(oldw))
		}
	}
	return dst, existed, nil
}

// putInPlace overwrites an existing 8-byte single-segment value's
// payload word directly — one store + one line flush, no allocation, no
// list CAS — returning done=false when the fast path does not apply
// (key absent, chained/odd-size value, legacy inline word, or open
// snapshots that need the old bytes version-logged). Concurrent writers
// racing the same key linearize by payload-word store order; a racing
// slow-path CAS that swings the node to a new chunk may discard this
// write, which linearizes it immediately before that CAS. The single
// word flips atomically, so recovery sees old or new, never torn.
func (e *engine) putInPlace(ctx *exec.Ctx, key uint64, val, dst []byte) ([]byte, bool, bool) {
	if e.list.OpenSnapshots() != 0 {
		return dst, false, false
	}
	old, ok := e.overwriteInPlace(ctx, key, val, nil)
	if !ok {
		return dst, false, false
	}
	return append(dst, old[:]...), true, true
}

// overwriteInPlace is the in-place core shared by putInPlace and the
// batch pre-pass: if key currently holds a single-segment slab value, its
// payload word is overwritten with val's 8 bytes and the previous bytes
// returned. With fb nil the line is flushed-and-fenced immediately (the
// single-op commit); otherwise the flush is deferred into fb and the
// caller's grouped drain is the persistence point. Callers must hold the
// era pin and have checked OpenSnapshots (the old bytes are not
// version-logged here).
func (e *engine) overwriteInPlace(ctx *exec.Ctx, key uint64, val []byte, fb *pmem.Batch) ([8]byte, bool) {
	var old [8]byte
	w, ok := e.list.Get(ctx, key)
	if !ok || !slab.IsRef(w) {
		return old, false
	}
	pool, off, ok := e.vals.PayloadOff(slab.FromWord(w))
	if !ok {
		return old, false
	}
	o := pool.Load(off, ctx.Mem)
	pool.Store(off, binary.LittleEndian.Uint64(val), ctx.Mem)
	if fb != nil {
		fb.Add(pool, off, 1, ctx.Mem)
	} else {
		pool.Persist(off, 1, ctx.Mem)
	}
	binary.LittleEndian.PutUint64(old[:], o)
	return old, true
}

// get appends the value stored under key to dst. The era pin spans both
// the node-word read and the chunk decode, so a concurrent overwrite
// cannot free the chunk out from under the copy.
func (e *engine) get(ctx *exec.Ctx, key uint64, dst []byte) ([]byte, bool) {
	e.list.Pin(ctx)
	defer e.list.Unpin(ctx)
	w, ok := e.list.Get(ctx, key)
	if !ok {
		return dst, false
	}
	return e.decodeValue(w, dst, ctx.Mem), true
}

// remove tombstones key, appending the removed bytes to dst and retiring
// the value's chunk. The list persists the tombstone before returning,
// so the retire happens strictly after the word that named the chunk
// durably moved on.
func (e *engine) remove(ctx *exec.Ctx, key uint64, dst []byte) ([]byte, bool, error) {
	e.list.Pin(ctx)
	defer e.list.Unpin(ctx)
	w, ok, err := e.list.Remove(ctx, key)
	if err != nil || !ok {
		return dst, ok, err
	}
	dst = e.decodeValue(w, dst, ctx.Mem)
	if slab.IsRef(w) {
		e.vals.Retire(slab.FromWord(w))
	}
	return dst, true, nil
}

// Store is a handle onto a persistent skip list (or a keyspace-sharded
// group of them) and its pools.
type Store struct {
	opts   Options
	topo   numa.Topology
	shards []*engine
	// met is the optional metrics sink (see EnableMetrics). Nil when
	// observability is off, so the hot-path cost of "metrics disabled"
	// is one atomic pointer load.
	met atomic.Pointer[storeMetrics]

	// MVCC snapshot state (snapshot.go). feed is the committed-batch
	// change feed, nil until EnableSnapshots; openSnaps tracks live Snap
	// handles for the gauges; snapBits allocates the reserved reader
	// thread-ID slots above Options.NumThreads.
	feed      atomic.Pointer[snapshot.Feed]
	snapMu    sync.Mutex
	openSnaps map[*Snap]time.Time
	snapBits  uint64

	// recovery records what the Reopen/Load that produced this handle
	// did (recovery.go). Zero for stores built by Create.
	recovery RecoveryStats
}

// newShardPools builds the pool set for one shard. An unsharded store
// keeps the original layouts (one pool per node under PerNode, one
// striped pool, or one plain pool); a sharded store gives every shard a
// single pool whose NUMA placement derives from the shard index.
func newShardPools(opts Options, topo numa.Topology, shard int) ([]*pmem.Pool, error) {
	if opts.Shards > 1 {
		home, stripe := -1, 0
		switch opts.Placement {
		case PerNode:
			home = topo.ShardNode(shard)
		case Striped:
			stripe = opts.NUMANodes
		}
		p, err := pmem.NewPool(pmem.Config{
			ID: 0, Words: opts.PoolWords, HomeNode: home,
			StripeNodes: stripe, Cost: opts.Cost,
		})
		if err != nil {
			return nil, err
		}
		return []*pmem.Pool{p}, nil
	}
	var pools []*pmem.Pool
	switch opts.Placement {
	case PerNode:
		for n := 0; n < opts.NUMANodes; n++ {
			p, err := pmem.NewPool(pmem.Config{
				ID: uint16(n), Words: opts.PoolWords, HomeNode: n, Cost: opts.Cost,
			})
			if err != nil {
				return nil, err
			}
			pools = append(pools, p)
		}
	case Striped:
		p, err := pmem.NewPool(pmem.Config{
			ID: 0, Words: opts.PoolWords, HomeNode: -1,
			StripeNodes: opts.NUMANodes, Cost: opts.Cost,
		})
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	default:
		p, err := pmem.NewPool(pmem.Config{ID: 0, Words: opts.PoolWords, HomeNode: -1, Cost: opts.Cost})
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	}
	return pools, nil
}

// Create builds a fresh store.
func Create(opts Options) (*Store, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	st := &Store{opts: opts, topo: numa.Topology{Nodes: opts.NUMANodes}}
	acfg := opts.allocConfig()
	for si := 0; si < opts.Shards; si++ {
		pools, err := newShardPools(opts, st.topo, si)
		if err != nil {
			return nil, err
		}
		var pas []*alloc.PoolAllocator
		for _, p := range pools {
			pa, err := alloc.Format(p, acfg)
			if err != nil {
				return nil, fmt.Errorf("formatting shard %d pool %d: %w", si, p.ID(), err)
			}
			pas = append(pas, pa)
		}
		e, err := assembleEngine(opts, pools, pas, false)
		if err != nil {
			return nil, err
		}
		list, err := skiplist.Create(e.alloc, opts.skipConfig())
		if err != nil {
			return nil, err
		}
		e.list = list
		if err := e.attachVals(false, 1); err != nil {
			return nil, err
		}
		st.shards = append(st.shards, e)
	}
	if opts.OnlineReclaim {
		st.EnableOnlineReclaim()
	}
	if opts.Snapshots {
		st.EnableSnapshots()
	}
	return st, nil
}

// assembleEngine wires space/clock/allocator over one shard's formatted
// pools.
func assembleEngine(opts Options, pools []*pmem.Pool, pas []*alloc.PoolAllocator, afterRestart bool) (*engine, error) {
	space := riv.NewSpace()
	for _, p := range pools {
		space.AddPool(p)
	}
	clock := epoch.Attach(pools[0], alloc.EpochOff)
	if afterRestart {
		// A restart is a crash boundary: all prior failure-free work
		// belongs to a dead epoch (§4.1.3). This is the entire
		// structure-independent part of recovery.
		clock.Advance()
	} else {
		clock.InitIfZero()
	}
	a := alloc.New(space, clock)
	for i, pa := range pas {
		// Node-local allocation only applies to the unsharded PerNode
		// layout, where one engine spans one pool per node. A sharded
		// engine owns a single pool (already placed by shard index), so it
		// is attached unplaced and serves workers from every node.
		node := -1
		if opts.Shards == 1 && opts.Placement == PerNode {
			node = i
		}
		a.AttachPool(pa, node)
	}
	return &engine{pools: pools, space: space, clock: clock, alloc: a}, nil
}

// Reopen simulates a process restart (or post-crash recovery) over the
// same pools: a brand-new handle is assembled, each shard's failure-free
// epoch is advanced, and the old handle must no longer be used. Per the
// paper, this is all the recovery there is — repairs happen lazily
// during subsequent operations. Shards recover concurrently under the
// Options.RecoveryParallelism budget (see recovery.go).
func (s *Store) Reopen() (*Store, error) {
	// The old handle's reclaimers run against the same pools the new
	// handle will own; stop them first (waits for their goroutines).
	s.DisableOnlineReclaim()
	st := &Store{opts: s.opts, topo: s.topo}
	n := len(s.shards)
	engines := make([]*engine, n)
	recs := make([]shardRecovery, n)
	par := normalizeRecoveryParallelism(s.opts.RecoveryParallelism)
	t0 := time.Now()
	err := recoverShards(n, par, func(i, scanPar int) error {
		e, err := recoverShard(s.opts, s.shards[i].pools, scanPar, &recs[i])
		engines[i] = e
		return err
	})
	if err != nil {
		return nil, err
	}
	st.shards = engines
	st.recovery = summarizeRecovery(par, recs, time.Since(t0))
	if s.opts.OnlineReclaim {
		st.EnableOnlineReclaim()
	}
	if s.opts.Snapshots {
		st.EnableSnapshots()
	}
	return st, nil
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// Pools exposes the underlying pools of every shard, in shard order
// (stats, crash control).
func (s *Store) Pools() []*pmem.Pool {
	if len(s.shards) == 1 {
		return s.shards[0].pools
	}
	var out []*pmem.Pool
	for _, e := range s.shards {
		out = append(out, e.pools...)
	}
	return out
}

// Epoch returns the current failure-free epoch of shard 0. All shards
// advance their clocks together at Reopen, so for stores that have only
// been reopened whole this is every shard's epoch.
func (s *Store) Epoch() uint64 { return s.shards[0].clock.Current() }

// List exposes the internal skip list (tests, harness). For a sharded
// store this is shard 0's list; see ShardList for the others.
func (s *Store) List() *skiplist.SkipList { return s.shards[0].list }

// Allocator exposes the internal allocator (tests, harness); shard 0's
// for a sharded store.
func (s *Store) Allocator() *alloc.Allocator { return s.shards[0].alloc }

// NumShards returns the number of keyspace shards (1 for an unsharded
// store).
func (s *Store) NumShards() int { return len(s.shards) }

// ShardList exposes shard i's skip list (tests, invariant checks).
func (s *Store) ShardList(i int) *skiplist.SkipList { return s.shards[i].list }

// ShardPools exposes shard i's pools.
func (s *Store) ShardPools(i int) []*pmem.Pool { return s.shards[i].pools }

// shardOf routes a key to its owning shard. Keys are interleaved modulo
// the shard count rather than range-partitioned: YCSB-style dense
// keyspaces (keys 1..N) then load every shard evenly, where contiguous
// range splits of the full uint64 domain would send every dense key to
// shard 0. Merged scans do not care — merging N sorted streams restores
// ascending order for any disjoint partition. Out-of-range keys map to
// shard 0, whose engine rejects them with the usual range errors.
func (s *Store) shardOf(key uint64) int {
	n := len(s.shards)
	if n == 1 || key < KeyMin || key > KeyMax {
		return 0
	}
	return int((key - KeyMin) % uint64(n))
}

// EnableCrashTracking switches every pool of every shard into
// crash-tracking mode. Must be called quiesced; background reclaimers
// are held at a cycle boundary for the switch.
func (s *Store) EnableCrashTracking() {
	s.PauseReclaim()
	for _, e := range s.shards {
		for _, p := range e.pools {
			p.EnableTracking()
		}
	}
	s.ResumeReclaim()
}

// DisableCrashTracking leaves crash-tracking mode (all pending writes
// count as persisted).
func (s *Store) DisableCrashTracking() {
	s.PauseReclaim()
	for _, e := range s.shards {
		for _, p := range e.pools {
			p.DisableTracking()
		}
	}
	s.ResumeReclaim()
}

// SimulateCrash discards every unflushed cache line in every pool of
// every shard, modelling a power failure of the whole machine. The store
// must be quiesced: all workers abandoned or stopped. Returns the number
// of lines reverted.
func (s *Store) SimulateCrash() int {
	// Reclaimers are paused — not resumed — so nothing touches the
	// reverted pools afterwards; the only valid next step is Reopen,
	// which stops them for good. A reclaimer goroutine already killed by
	// a crash injector (its thread "died at the failure") pauses cleanly.
	s.PauseReclaim()
	n := 0
	for _, e := range s.shards {
		for _, p := range e.pools {
			n += p.Crash()
		}
	}
	return n
}

// shardSalt decorrelates per-shard eviction draws in SimulateCrashPartial
// while leaving shard 0 (and so every unsharded store) with exactly the
// pre-sharding seed derivation.
func shardSalt(shard int) uint64 {
	return uint64(shard) * 0x9E3779B97F4A7C15
}

// SimulateCrashPartial is SimulateCrash with cache-eviction modelling:
// each unflushed line independently survives (as if evicted to the
// persistence domain just before the failure) with probability
// evictProb. Every shard crashes under its own derived seed, so the
// surviving subsets differ per shard as they would across real devices.
// Returns (reverted, survived) line counts.
func (s *Store) SimulateCrashPartial(evictProb float64, seed uint64) (int, int) {
	s.PauseReclaim() // see SimulateCrash
	rev, sur := 0, 0
	for si, e := range s.shards {
		for _, p := range e.pools {
			r, v := p.CrashPartial(evictProb, seed^shardSalt(si)^uint64(p.ID()))
			rev += r
			sur += v
		}
	}
	return rev, sur
}

// SetInjector installs a crash injector on every pool (nil to remove).
func (s *Store) SetInjector(inj pmem.Injector) {
	for _, e := range s.shards {
		for _, p := range e.pools {
			p.SetInjector(inj)
		}
	}
}

// ReclaimOrphans runs the optional quiesced sweep for chunks orphaned by
// a crash during chunk provisioning, across every shard (see
// alloc.ReclaimOrphanChunks).
func (s *Store) ReclaimOrphans() int {
	n := 0
	for _, e := range s.shards {
		n += e.alloc.ReclaimOrphanChunks(exec.NewCtx(0, 0))
	}
	return n
}

// Compact reclaims every node whose keys are all tombstoned, returning
// their blocks to the allocator — the maintenance pass the paper names
// as the next step beyond tombstoning removals (§4.6, §7). Every shard
// is compacted; the store must be quiesced (no concurrent workers). An
// interrupted compaction is completed automatically at the next Reopen.
func (s *Store) Compact() (int, error) {
	// With online reclamation on, hold the reclaimers at a cycle boundary
	// and flush their limbo lists first: a limbo block freed twice (once
	// by Compact's retired-block sweep, once by a resumed reclaimer whose
	// stale limbo entry now names a reallocated node) would corrupt the
	// structure, so the drain empties limbo before Compact looks.
	s.PauseReclaim()
	defer s.ResumeReclaim()
	total := s.drainReclaimQuiesced()
	for _, e := range s.shards {
		n, err := e.list.Compact(exec.NewCtx(0, 0))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Worker is a per-thread handle. Workers are not safe for concurrent use
// by multiple goroutines; create one per goroutine, with distinct IDs.
// Thread IDs must stay below Options.NumThreads and should be reused
// across a crash by the "same" logical thread (the paper's deferred
// allocation recovery keys off thread identity).
type Worker struct {
	s *Store
	// ctxs holds one execution context per shard. Keeping them separate
	// (rather than routing every shard through one context) keeps each
	// shard's traversal state worker-AND-shard-private: the hint cache
	// only ever holds pointers into one shard's address space, the
	// simulated line cache covers one shard's working set, and the
	// deferred-persist group of a batch never straddles address spaces.
	ctxs []*exec.Ctx
	// its/merged are the reusable merged-scan cursor for sharded stores,
	// built lazily on first Scan.
	its    []*skiplist.Iterator
	merged *skiplist.Merged
	// runs are the reusable per-shard op buffers for ApplyBatch.
	runs [][]skiplist.BatchOp
	// ops counts engine operations issued through this worker (see
	// WorkerStats); owner-goroutine only, like everything else here.
	ops uint64
	// vbuf backs the value slices returned by Put/Get/Remove/View: they
	// alias this buffer and stay valid only until the worker's next
	// operation (copy to keep). Owner-goroutine only.
	vbuf []byte
	// u64b is the scratch encoding buffer for the *U64 compat helpers; a
	// worker field rather than a stack array so the slice passed down
	// never escapes to the heap.
	u64b [8]byte
	// keyElig is the per-shard scratch map for ApplyBatch's in-place
	// overwrite pre-pass: key -> every op on it in this run is a read or
	// an 8-byte insert (see applyShard). Owner-goroutine only.
	keyElig map[uint64]bool
}

// NewWorker creates a worker pinned (round-robin) to a NUMA node.
func (s *Store) NewWorker(threadID int) *Worker {
	ctxs := make([]*exec.Ctx, len(s.shards))
	for i := range ctxs {
		ctxs[i] = exec.NewCtx(threadID, s.topo.NodeOf(threadID))
	}
	return &Worker{s: s, ctxs: ctxs}
}

// Ctx exposes the execution context (harness use); for a sharded store,
// the context used against shard 0.
func (w *Worker) Ctx() *exec.Ctx { return w.ctxs[0] }

// at routes a key to (owning engine, this worker's context for it),
// bumping the shard's routing counter when metrics are enabled.
func (w *Worker) at(key uint64, m *storeMetrics) (*engine, *exec.Ctx) {
	si := w.s.shardOf(key)
	if m != nil {
		m.shardOps[si].Inc()
	}
	return w.s.shards[si], w.ctxs[si]
}

// Put adds or updates a key with an arbitrary byte value (up to
// MaxValueLen bytes; zero-length values are legal and distinct from
// absence). It returns the previous value and whether the key was
// present. The returned slice aliases the worker's internal buffer and
// is valid only until this worker's next operation — copy it to keep
// it. The value bytes are written out-of-place and persisted before the
// node's value word is published, so a crash anywhere in the operation
// leaves the key holding either the complete old value or the complete
// new one, never a torn mix.
func (w *Worker) Put(key uint64, val []byte) (old []byte, existed bool, err error) {
	m := w.s.met.Load()
	e, ctx := w.at(key, m)
	w.ops++
	if m == nil {
		w.vbuf, existed, err = e.put(ctx, key, val, w.vbuf[:0])
		return w.vbuf, existed, err
	}
	start := metrics.Now()
	w.vbuf, existed, err = e.put(ctx, key, val, w.vbuf[:0])
	m.opLat[opKindInsert].Since(start)
	return w.vbuf, existed, err
}

// Get returns the value stored under key. The returned slice aliases
// the worker's internal buffer and is valid only until this worker's
// next operation; use GetInto to land the bytes in a caller-owned
// buffer instead.
func (w *Worker) Get(key uint64) ([]byte, bool) {
	m := w.s.met.Load()
	e, ctx := w.at(key, m)
	w.ops++
	var ok bool
	if m == nil {
		w.vbuf, ok = e.get(ctx, key, w.vbuf[:0])
		return w.vbuf, ok
	}
	start := metrics.Now()
	w.vbuf, ok = e.get(ctx, key, w.vbuf[:0])
	m.opLat[opKindGet].Since(start)
	return w.vbuf, ok
}

// GetInto appends the value stored under key to dst and returns the
// extended slice, avoiding both the worker buffer and any hidden copy —
// the bytes are decoded from the slab chunk straight into dst.
func (w *Worker) GetInto(key uint64, dst []byte) ([]byte, bool) {
	m := w.s.met.Load()
	e, ctx := w.at(key, m)
	w.ops++
	if m == nil {
		return e.get(ctx, key, dst)
	}
	start := metrics.Now()
	out, ok := e.get(ctx, key, dst)
	m.opLat[opKindGet].Since(start)
	return out, ok
}

// View calls fn with the value stored under key, reporting whether the
// key was present. The slice passed to fn is only valid for the
// duration of the call (it aliases the worker's buffer); fn must not
// retain it.
func (w *Worker) View(key uint64, fn func(val []byte)) bool {
	v, ok := w.Get(key)
	if ok {
		fn(v)
	}
	return ok
}

// Contains reports whether key is present.
func (w *Worker) Contains(key uint64) bool {
	m := w.s.met.Load()
	e, ctx := w.at(key, m)
	w.ops++
	if m == nil {
		return e.list.Contains(ctx, key)
	}
	start := metrics.Now()
	ok := e.list.Contains(ctx, key)
	m.opLat[opKindContains].Since(start)
	return ok
}

// Remove deletes key, returning the removed value and whether it was
// present. The returned slice follows the same worker-buffer lifetime
// rule as Get.
func (w *Worker) Remove(key uint64) ([]byte, bool, error) {
	m := w.s.met.Load()
	e, ctx := w.at(key, m)
	w.ops++
	var ok bool
	var err error
	if m == nil {
		w.vbuf, ok, err = e.remove(ctx, key, w.vbuf[:0])
		return w.vbuf, ok, err
	}
	start := metrics.Now()
	w.vbuf, ok, err = e.remove(ctx, key, w.vbuf[:0])
	m.opLat[opKindRemove].Since(start)
	return w.vbuf, ok, err
}

// Scan visits all live pairs with keys in [lo, hi] in ascending order
// until fn returns false. On a sharded store the per-shard bottom levels
// are merged on the fly, so the callback still sees one globally
// ascending key sequence. The value slice passed to fn is only valid
// for that callback invocation.
func (w *Worker) Scan(lo, hi uint64, fn func(key uint64, val []byte) bool) error {
	w.ops++
	if m := w.s.met.Load(); m != nil {
		start := metrics.Now()
		err := w.scan(lo, hi, fn)
		m.opLat[opKindScan].Since(start)
		return err
	}
	return w.scan(lo, hi, fn)
}

// scan is the uninstrumented body of Scan.
func (w *Worker) scan(lo, hi uint64, fn func(key uint64, val []byte) bool) error {
	if len(w.s.shards) == 1 {
		e, ctx := w.s.shards[0], w.ctxs[0]
		// The list holds the era pin across the whole Scan call, so
		// decoding inside the callback reads chunks no reclaimer can have
		// freed yet.
		return e.list.Scan(ctx, lo, hi, func(k, v uint64) bool {
			w.vbuf = e.decodeValue(v, w.vbuf[:0], ctx.Mem)
			return fn(k, w.vbuf)
		})
	}
	if lo < KeyMin {
		lo = KeyMin
	}
	if hi > KeyMax {
		hi = KeyMax
	}
	if lo > hi {
		return nil
	}
	m := w.mergedCursor()
	for ok := m.Seek(lo); ok && m.Key() <= hi; ok = m.Next() {
		if !fn(m.Key(), m.ValueBytes()) {
			return nil
		}
	}
	return nil
}

// PutU64 stores value as its 8 little-endian bytes — the compatibility
// shim for fixed-width callers (and exactly the representation legacy
// v1/v2 pool images decode to). Repeated PutU64 over an existing key
// hits an in-place single-word overwrite, keeping the pre-bytes-API
// point-update cost.
func (w *Worker) PutU64(key, value uint64) (old uint64, existed bool, err error) {
	binary.LittleEndian.PutUint64(w.u64b[:], value)
	ob, existed, err := w.Put(key, w.u64b[:])
	if existed {
		old = leU64(ob)
	}
	return old, existed, err
}

// GetU64 reads a value written by PutU64 (or a legacy inline value) back
// as a uint64.
func (w *Worker) GetU64(key uint64) (uint64, bool) {
	v, ok := w.Get(key)
	if !ok {
		return 0, false
	}
	return leU64(v), true
}

// RemoveU64 is Remove for fixed-width callers.
func (w *Worker) RemoveU64(key uint64) (uint64, bool, error) {
	v, ok, err := w.Remove(key)
	if !ok || err != nil {
		return 0, ok, err
	}
	return leU64(v), true, nil
}

// ScanU64 is Scan for fixed-width callers: each value is decoded as its
// first 8 little-endian bytes (zero-padded when shorter).
func (w *Worker) ScanU64(lo, hi uint64, fn func(key, value uint64) bool) error {
	return w.Scan(lo, hi, func(k uint64, v []byte) bool {
		return fn(k, leU64(v))
	})
}

// leU64 decodes up to 8 little-endian bytes, zero-padding short values.
func leU64(b []byte) uint64 {
	if len(b) >= 8 {
		return binary.LittleEndian.Uint64(b)
	}
	var t [8]byte
	copy(t[:], b)
	return binary.LittleEndian.Uint64(t[:])
}

// mergedCursor returns the worker's reusable cross-shard merge cursor.
func (w *Worker) mergedCursor() *skiplist.Merged {
	if w.merged == nil {
		w.its = make([]*skiplist.Iterator, len(w.s.shards))
		for i, e := range w.s.shards {
			w.its[i] = e.list.NewIterator(w.ctxs[i])
		}
		w.merged = skiplist.NewMerged(w.its)
	}
	return w.merged
}

// Count returns the number of live keys across all shards (quiesced
// walk).
func (w *Worker) Count() int {
	total := 0
	for i, e := range w.s.shards {
		total += e.list.Count(w.ctxs[i])
	}
	return total
}

// Iterator is a forward cursor over live pairs in ascending key order:
// Seek positions it on the first pair with key >= the argument, Next
// advances, Key/Value read the current pair while Valid (ValueU64 is
// the fixed-width compat accessor). The slice returned by Value aliases
// the cursor's buffer and stays valid until the cursor leaves the
// current node — copy it to keep it across Next calls. Like the worker
// that created it, an Iterator must not be shared between goroutines.
type Iterator interface {
	Seek(key uint64) bool
	Next() bool
	Valid() bool
	Key() uint64
	Value() []byte
	ValueU64() uint64
}

// storeIter adapts a skiplist cursor (single-list iterator or sharded
// merge) to the store's bytes-first Iterator interface.
type storeIter struct {
	c skiplist.Cursor
}

func (it storeIter) Seek(key uint64) bool { return it.c.Seek(key) }
func (it storeIter) Next() bool           { return it.c.Next() }
func (it storeIter) Valid() bool          { return it.c.Valid() }
func (it storeIter) Key() uint64          { return it.c.Key() }
func (it storeIter) Value() []byte        { return it.c.ValueBytes() }
func (it storeIter) ValueU64() uint64     { return leU64(it.c.ValueBytes()) }

// Iterator returns a fresh cursor over the whole store — a single-shard
// list cursor, or a merge over every shard's bottom level, which yields
// keys in globally ascending order across shard boundaries.
func (w *Worker) Iterator() Iterator {
	if len(w.s.shards) == 1 {
		return storeIter{c: w.s.shards[0].list.NewIterator(w.ctxs[0])}
	}
	its := make([]*skiplist.Iterator, len(w.s.shards))
	for i, e := range w.s.shards {
		its[i] = e.list.NewIterator(w.ctxs[i])
	}
	return storeIter{c: skiplist.NewMerged(its)}
}

// CheckInvariants validates structural invariants of every shard
// (quiesced), plus the routing invariant that every key lives in the
// shard that owns it.
func (w *Worker) CheckInvariants() error {
	for i, e := range w.s.shards {
		if err := e.list.CheckInvariants(w.ctxs[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if len(w.s.shards) > 1 {
			var stray error
			e.list.Scan(w.ctxs[i], KeyMin, KeyMax, func(k, v uint64) bool {
				if w.s.shardOf(k) != i {
					stray = fmt.Errorf("shard %d holds key %d owned by shard %d", i, k, w.s.shardOf(k))
					return false
				}
				return true
			})
			if stray != nil {
				return stray
			}
		}
	}
	return nil
}

// Save writes every pool's durable image into dir (one file per pool,
// shard-qualified names for sharded stores).
func (s *Store) Save(dir string) error {
	// Save is a quiesced entry point; flush limbo so the saved image
	// carries no retired blocks (they would be rediscovered anyway, but a
	// clean image loads clean).
	s.PauseReclaim()
	defer s.ResumeReclaim()
	s.drainReclaimQuiesced()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for si, e := range s.shards {
		for _, p := range e.pools {
			f, err := os.Create(filepath.Join(dir, poolFileName(len(s.shards), si, p.ID())))
			if err != nil {
				return err
			}
			if _, err := p.WriteTo(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return saveMeta(dir, s.opts)
}

// poolFileName keeps the historical "pool%d.upsl" names for unsharded
// stores (readable by and from older revisions) and qualifies by shard
// otherwise.
func poolFileName(shards, shard int, poolID uint16) string {
	if shards == 1 {
		return fmt.Sprintf("pool%d.upsl", poolID)
	}
	return fmt.Sprintf("s%d_pool%d.upsl", shard, poolID)
}

// Load re-creates a store from images written by Save (physical pool
// images; a restart across processes, so every shard's epoch advances)
// or from a SaveOnline logical dump (fresh pools rebuilt from the
// dumped pairs).
func Load(dir string) (*Store, error) {
	return LoadWithConfig(dir, LoadConfig{})
}

// LoadWithConfig is Load with recovery tuning: parallelism override,
// the bulk-build/replay choice for pairs dumps, and a crash injector
// installed before recovery work begins (see LoadConfig).
func LoadWithConfig(dir string, cfg LoadConfig) (*Store, error) {
	opts, ver, kind, err := loadMeta(dir)
	if err != nil {
		return nil, err
	}
	if cfg.RecoveryParallelism != 0 {
		opts.RecoveryParallelism = cfg.RecoveryParallelism
	}
	if cfg.Cost != nil {
		opts.Cost = cfg.Cost
	}
	if kind == "pairs" {
		return loadPairsDump(dir, opts, ver, cfg)
	}
	st := &Store{opts: opts, topo: numa.Topology{Nodes: opts.NUMANodes}}
	n := opts.Shards
	engines := make([]*engine, n)
	recs := make([]shardRecovery, n)
	par := normalizeRecoveryParallelism(opts.RecoveryParallelism)
	t0 := time.Now()
	err = recoverShards(n, par, func(i, scanPar int) error {
		tRead := time.Now()
		pools, err := loadShardPools(dir, opts, st.topo, i)
		if err != nil {
			return err
		}
		if cfg.Injector != nil {
			for _, p := range pools {
				p.SetInjector(cfg.Injector)
			}
		}
		recs[i].attach += time.Since(tRead)
		e, err := recoverShard(opts, pools, scanPar, &recs[i])
		engines[i] = e
		return err
	})
	if err != nil {
		return nil, err
	}
	st.shards = engines
	st.recovery = summarizeRecovery(par, recs, time.Since(t0))
	return st, nil
}

// loadShardPools reads one shard's pool images back with the same
// placement newShardPools would assign.
func loadShardPools(dir string, opts Options, topo numa.Topology, shard int) ([]*pmem.Pool, error) {
	nPools := 1
	if opts.Shards == 1 && opts.Placement == PerNode {
		nPools = opts.NUMANodes
	}
	var pools []*pmem.Pool
	for id := 0; id < nPools; id++ {
		f, err := os.Open(filepath.Join(dir, poolFileName(opts.Shards, shard, uint16(id))))
		if err != nil {
			return nil, err
		}
		home, stripe := -1, 0
		switch {
		case opts.Shards > 1 && opts.Placement == PerNode:
			home = topo.ShardNode(shard)
		case opts.Placement == PerNode:
			home = id
		case opts.Placement == Striped:
			stripe = opts.NUMANodes
		}
		p, err := pmem.ReadPool(f, home, stripe, opts.Cost)
		f.Close()
		if err != nil {
			return nil, err
		}
		pools = append(pools, p)
	}
	return pools, nil
}

// saveMeta/loadMeta persist Options in a tiny sidecar file. This
// revision writes v4 lines carrying a dump-kind token after the version
// — "phys" for physical pool images (Save), "pairs" for logical
// key/value dumps (SaveOnline) — and still reads the v1/v2 physical and
// v3 pairs formats of earlier revisions.
func saveMeta(dir string, o Options) error {
	return writeMetaV4(dir, o, "phys")
}

func writeMetaV4(dir string, o Options, kind string) error {
	f, err := os.Create(filepath.Join(dir, "meta.upsl"))
	if err != nil {
		return err
	}
	defer f.Close()
	sorted := 0
	if o.SortedNodes {
		sorted = 1
	}
	_, err = fmt.Fprintf(f, "v4 %s %d %d %d %d %d %d %d %d %d %d %d\n",
		kind, o.MaxHeight, o.KeysPerNode, sorted, o.NUMANodes, int(o.Placement),
		o.PoolWords, o.ChunkWords, o.MaxChunks, o.NumArenas, o.NumThreads, o.Shards)
	return err
}

// loadMeta parses the sidecar, returning the options, the format
// version tag, and the dump kind ("phys" or "pairs").
func loadMeta(dir string) (Options, string, string, error) {
	f, err := os.Open(filepath.Join(dir, "meta.upsl"))
	if err != nil {
		return Options{}, "", "", err
	}
	defer f.Close()
	var ver string
	if _, err := fmt.Fscan(f, &ver); err != nil {
		return Options{}, "", "", fmt.Errorf("upskiplist: unreadable meta: %w", err)
	}
	kind := "phys"
	if ver == "v3" {
		kind = "pairs"
	}
	if ver == "v4" {
		if _, err := fmt.Fscan(f, &kind); err != nil {
			return Options{}, "", "", fmt.Errorf("upskiplist: truncated v4 meta: %w", err)
		}
		if kind != "phys" && kind != "pairs" {
			return Options{}, "", "", fmt.Errorf("upskiplist: unknown v4 dump kind %q", kind)
		}
	}
	var o Options
	var sorted, placement int
	_, err = fmt.Fscan(f, &o.MaxHeight, &o.KeysPerNode, &sorted, &o.NUMANodes,
		&placement, &o.PoolWords, &o.ChunkWords, &o.MaxChunks, &o.NumArenas, &o.NumThreads)
	if err != nil && err != io.EOF {
		return Options{}, "", "", err
	}
	switch ver {
	case "v1":
		o.Shards = 1
	case "v2", "v3", "v4":
		if _, err := fmt.Fscan(f, &o.Shards); err != nil {
			return Options{}, "", "", fmt.Errorf("upskiplist: truncated %s meta: %w", ver, err)
		}
		if o.Shards < 1 {
			return Options{}, "", "", fmt.Errorf("upskiplist: bad shard count %d in meta", o.Shards)
		}
	default:
		return Options{}, "", "", fmt.Errorf("upskiplist: unknown meta version %q", ver)
	}
	o.SortedNodes = sorted == 1
	o.Placement = Placement(placement)
	return o, ver, kind, nil
}
