package upskiplist_test

import (
	"fmt"

	"upskiplist"
)

// ExampleCreate shows the basic write/read/remove cycle.
func ExampleCreate() {
	store, err := upskiplist.Create(upskiplist.DefaultOptions())
	if err != nil {
		panic(err)
	}
	w := store.NewWorker(0)
	w.PutU64(42, 4200)
	v, ok := w.GetU64(42)
	fmt.Println(v, ok)
	w.RemoveU64(42)
	_, ok = w.GetU64(42)
	fmt.Println(ok)
	// Output:
	// 4200 true
	// false
}

// ExampleStore_Reopen demonstrates constant-time crash recovery: the new
// handle serves reads immediately, with repairs deferred into later
// traversals.
func ExampleStore_Reopen() {
	store, _ := upskiplist.Create(upskiplist.DefaultOptions())
	w := store.NewWorker(0)
	w.PutU64(1, 100)

	recovered, err := store.Reopen() // crash boundary: epoch advances
	if err != nil {
		panic(err)
	}
	v, ok := recovered.NewWorker(0).GetU64(1)
	fmt.Println(v, ok)
	// Output: 100 true
}

// ExampleWorker_Scan performs a bottom-level range query.
func ExampleWorker_Scan() {
	store, _ := upskiplist.Create(upskiplist.DefaultOptions())
	w := store.NewWorker(0)
	for k := uint64(1); k <= 5; k++ {
		w.PutU64(k*10, k)
	}
	w.ScanU64(20, 40, func(key, value uint64) bool {
		fmt.Println(key, value)
		return true
	})
	// Output:
	// 20 2
	// 30 3
	// 40 4
}

// ExampleStore_Compact reclaims fully-tombstoned nodes (quiesced
// maintenance).
func ExampleStore_Compact() {
	store, _ := upskiplist.Create(upskiplist.DefaultOptions())
	w := store.NewWorker(0)
	for k := uint64(1); k <= 100; k++ {
		w.PutU64(k, k)
	}
	for k := uint64(1); k <= 100; k++ {
		w.RemoveU64(k)
	}
	n, _ := store.Compact()
	fmt.Println(n > 0, w.Count())
	// Output: true 0
}

// ExampleWorker_Iterator walks the index with a cursor, the access
// pattern of an ORDER BY consumer.
func ExampleWorker_Iterator() {
	store, _ := upskiplist.Create(upskiplist.DefaultOptions())
	w := store.NewWorker(0)
	for k := uint64(1); k <= 4; k++ {
		w.PutU64(k*5, k)
	}
	it := w.Iterator()
	for ok := it.Seek(10); ok; ok = it.Next() {
		fmt.Println(it.Key(), it.ValueU64())
	}
	// Output:
	// 10 2
	// 15 3
	// 20 4
}
